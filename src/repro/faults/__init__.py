"""Deterministic fault injection for BackFi links.

Build a :class:`FaultPlan` from typed events, hand it to
:func:`repro.link.run_backscatter_session` (or an
:class:`repro.link.ArqLink`), and the same seed reproduces the same
faults at any ``--jobs N``::

    from repro.faults import Blocker, FaultPlan

    plan = FaultPlan([Blocker(gain_db=-30, probability=0.6)], seed=42)
    out = run_backscatter_session(scene, tag, reader,
                                  faults=plan, exchange_index=0, rng=rng)

The transport-level sibling lives in :mod:`repro.faults.chaos`: a
:class:`ChaosPlan` of typed service faults (dropped/duplicated/
reordered/corrupted chunks, connection resets, latency spikes, stalled
clients, worker crashes) that the streaming service injects under the
same ``(seed, exchange_index)`` determinism contract.

See ``docs/ROBUSTNESS.md`` for the fault taxonomy and the determinism
contract.
"""

from .chaos import (
    DEFAULT_CHAOS_EVENTS,
    ChaosConfig,
    ChaosEvent,
    ChaosPlan,
    ChaosRealization,
    ChunkCorrupt,
    ChunkDrop,
    ChunkDuplicate,
    ChunkReorder,
    ClientStall,
    ConnectionReset,
    LatencySpike,
    WorkerFault,
)
from .plan import (
    AdcSaturation,
    Blocker,
    Brownout,
    ClockDrift,
    DetectorMiss,
    FaultEvent,
    FaultPlan,
    FaultRealization,
    InterferenceBurst,
)

__all__ = [
    "AdcSaturation",
    "Blocker",
    "Brownout",
    "ChaosConfig",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosRealization",
    "ChunkCorrupt",
    "ChunkDrop",
    "ChunkDuplicate",
    "ChunkReorder",
    "ClientStall",
    "ClockDrift",
    "ConnectionReset",
    "DEFAULT_CHAOS_EVENTS",
    "DetectorMiss",
    "FaultEvent",
    "FaultPlan",
    "FaultRealization",
    "InterferenceBurst",
    "LatencySpike",
    "WorkerFault",
]
