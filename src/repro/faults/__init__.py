"""Deterministic fault injection for BackFi links.

Build a :class:`FaultPlan` from typed events, hand it to
:func:`repro.link.run_backscatter_session` (or an
:class:`repro.link.ArqLink`), and the same seed reproduces the same
faults at any ``--jobs N``::

    from repro.faults import Blocker, FaultPlan

    plan = FaultPlan([Blocker(gain_db=-30, probability=0.6)], seed=42)
    out = run_backscatter_session(scene, tag, reader,
                                  faults=plan, exchange_index=0, rng=rng)

See ``docs/ROBUSTNESS.md`` for the fault taxonomy and the determinism
contract.
"""

from .plan import (
    AdcSaturation,
    Blocker,
    Brownout,
    ClockDrift,
    DetectorMiss,
    FaultEvent,
    FaultPlan,
    FaultRealization,
    InterferenceBurst,
)

__all__ = [
    "AdcSaturation",
    "Blocker",
    "Brownout",
    "ClockDrift",
    "DetectorMiss",
    "FaultEvent",
    "FaultPlan",
    "FaultRealization",
    "InterferenceBurst",
]
