"""Deterministic transport-level chaos for the streaming service.

:class:`~repro.faults.plan.FaultPlan` injects *physics* faults (blockers,
brownouts, saturation) into the waveform.  A :class:`ChaosPlan` is its
transport sibling: a seedable, typed schedule of the failure modes a
long-running decode service meets on the wire and in the worker pool --
dropped, duplicated, reordered and corrupted chunks, connection resets
mid-exchange, latency spikes, stalled (slow-loris) clients, and decode
workers that die at the frame barrier.

Determinism contract
--------------------
``plan.realize(exchange_index)`` is a pure function of
``(plan.seed, exchange_index)``, exactly mirroring ``FaultPlan``:
which events trigger and where their anchors land never depend on
scheduling, wall-clock, or the session's own RNG stream.  Anchors are
drawn as *fractions of the exchange's capture* and resolved to sample
offsets, so the injected-fault log is identical at any chunk size: the
same event fires on whichever chunk covers its anchor sample.

Each injected event appends a description to the realization's
``injected`` log and emits a ``chaos.<kind>`` telemetry span, so a
chaos run's fault schedule shows up next to the decode-stage spans in
``repro trace`` and the live ``/telemetry/feed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, ClassVar, Sequence

import numpy as np

from ..telemetry import get_collector

__all__ = [
    "ChaosConfig",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosRealization",
    "ChunkCorrupt",
    "ChunkDrop",
    "ChunkDuplicate",
    "ChunkReorder",
    "ClientStall",
    "ConnectionReset",
    "DEFAULT_CHAOS_EVENTS",
    "LatencySpike",
    "WorkerFault",
]


@dataclass(frozen=True)
class ChaosEvent:
    """Base class: one typed transport failure with a trigger chance."""

    probability: float = 1.0
    """Chance this event fires on any given exchange (i.i.d. across
    exchange indices, from the plan's seed)."""

    kind: ClassVar[str] = "event"

    def describe(self, **resolved) -> str:
        """Short label recording what actually happened, e.g.
        ``chunk-drop(at_frac=0.31)`` -- ``resolved`` overrides fields
        whose value was drawn per exchange (the ``-1`` sentinel)."""
        parts = []
        for f in fields(self):
            if f.name == "probability":
                continue
            value = resolved.get(f.name, getattr(self, f.name))
            parts.append(f"{f.name}={value:g}")
        return f"{self.kind}({', '.join(parts)})"


@dataclass(frozen=True)
class _AnchoredEvent(ChaosEvent):
    """A transport event anchored to one point of the capture."""

    at_frac: float = -1.0
    """Anchor as a fraction of the exchange's capture; negative =
    draw uniformly per exchange (range depends on the event)."""

    #: Anchor draw range used when ``at_frac`` is negative.
    draw_range: ClassVar[tuple[float, float]] = (0.05, 0.95)


@dataclass(frozen=True)
class ChunkDrop(_AnchoredEvent):
    """The chunk covering the anchor vanishes on the wire.

    The server swallows the request without responding, so the client
    sees a read deadline expire -- the recovery path is a timed-out
    retry of the same idempotent chunk.
    """

    kind: ClassVar[str] = "chunk-drop"


@dataclass(frozen=True)
class ChunkDuplicate(_AnchoredEvent):
    """The chunk covering the anchor arrives twice.

    A client (or middlebox) retransmit the server must deduplicate:
    with chunk indexing the replay is detected and acked idempotently;
    a legacy sequential producer would corrupt the assembly instead.
    """

    kind: ClassVar[str] = "chunk-duplicate"


@dataclass(frozen=True)
class ChunkReorder(_AnchoredEvent):
    """The chunk covering the anchor is delivered late, out of order.

    The server holds it and releases it only after the *next* chunk
    arrives, exercising the out-of-order stash.  Never anchored on the
    final chunk (there is no later arrival to trigger the release).
    """

    kind: ClassVar[str] = "chunk-reorder"
    draw_range: ClassVar[tuple[float, float]] = (0.05, 0.8)


@dataclass(frozen=True)
class ChunkCorrupt(_AnchoredEvent):
    """The chunk covering the anchor is bit-flipped in transit.

    A checksummed client gets the corruption detected server-side and
    replays the chunk; an unchecksummed one silently assembles a
    poisoned capture.
    """

    flip_bytes: int = 64
    """How many bytes are XOR-flipped at the anchor."""

    kind: ClassVar[str] = "chunk-corrupt"


@dataclass(frozen=True)
class ConnectionReset(_AnchoredEvent):
    """The TCP connection is torn down when the anchor chunk arrives.

    Recovery is a reconnect plus idempotent replay from the session's
    checkpoint (the submitted-samples high-water mark).
    """

    kind: ClassVar[str] = "connection-reset"


@dataclass(frozen=True)
class LatencySpike(_AnchoredEvent):
    """The anchor chunk's response stalls for ``delay_s`` seconds.

    Exercises the client's per-request deadline headroom; a deadline
    shorter than the spike turns this into a (safe, idempotent) retry.
    """

    delay_s: float = 0.4

    kind: ClassVar[str] = "latency-spike"


@dataclass(frozen=True)
class ClientStall(_AnchoredEvent):
    """A slow-loris client: ingest pauses ``stall_s`` at the anchor.

    Honored by the chaos *driver* (the client side of a harness run);
    the server-side watchdog is what recovers the stuck session.
    """

    stall_s: float = 1.0

    kind: ClassVar[str] = "client-stall"


@dataclass(frozen=True)
class WorkerFault(ChaosEvent):
    """The decode worker dies at the frame barrier (once per exchange).

    The multiplexer reports a retryable failure while keeping the
    fully-assembled capture, so an idempotent replay of the final chunk
    re-dispatches the decode.
    """

    kind: ClassVar[str] = "worker-fault"


_EVENT_TYPES: dict[str, type[ChaosEvent]] = {
    cls.kind: cls
    for cls in (ChunkDrop, ChunkDuplicate, ChunkReorder, ChunkCorrupt,
                ConnectionReset, LatencySpike, ClientStall, WorkerFault)
}

DEFAULT_CHAOS_EVENTS: tuple[ChaosEvent, ...] = (
    ChunkDrop(probability=0.5),
    ChunkDuplicate(probability=0.4),
    ChunkReorder(probability=0.3),
    ChunkCorrupt(probability=0.4),
    ConnectionReset(probability=0.5),
    LatencySpike(probability=0.3),
    WorkerFault(probability=0.25),
)
"""The standard chaos mix: every transport failure mode plus worker
faults, at base probabilities an ``intensity`` dial scales down."""


@dataclass(frozen=True)
class ChaosPlan:
    """A seedable, typed schedule of transport faults.

    Mirrors the :class:`~repro.faults.plan.FaultPlan` contract: all
    realisations are pure functions of ``(seed, exchange_index)``.
    """

    events: tuple[ChaosEvent, ...] = ()
    seed: int = 0

    def __init__(self, events: Sequence[ChaosEvent] = (), seed: int = 0):
        object.__setattr__(self, "events", tuple(events))
        object.__setattr__(self, "seed", int(seed))

    def scaled(self, intensity: float) -> "ChaosPlan":
        """The same plan with every trigger probability scaled."""
        k = float(intensity)
        if k < 0:
            raise ValueError("intensity must be >= 0")
        import dataclasses

        return ChaosPlan(
            tuple(dataclasses.replace(
                ev, probability=min(1.0, ev.probability * k))
                for ev in self.events),
            seed=self.seed,
        )

    def realize(self, exchange_index: int = 0) -> "ChaosRealization":
        """Draw which events fire on one exchange, and where.

        Anchors for triggered events are drawn here (not lazily), so a
        realization is immutable data plus firing bookkeeping.
        """
        rng = np.random.default_rng(np.random.SeedSequence(
            self.seed, spawn_key=(int(exchange_index),)))
        armed: list[tuple[ChaosEvent, float]] = []
        worker_faults = 0
        for ev in self.events:
            u = float(rng.random())  # always drawn: stream stays aligned
            if u >= ev.probability:
                continue
            if isinstance(ev, WorkerFault):
                worker_faults += 1
                continue
            if isinstance(ev, _AnchoredEvent):
                frac = ev.at_frac
                if frac < 0.0:
                    lo, hi = type(ev).draw_range
                    frac = float(rng.uniform(lo, hi))
                armed.append((ev, frac))
        armed.sort(key=lambda pair: pair[1])
        return ChaosRealization(
            armed=tuple(armed),
            worker_faults=worker_faults,
            exchange_index=int(exchange_index),
        )


@dataclass
class ChaosRealization:
    """The transport faults of one exchange, resolved to anchors.

    The serving layer calls :meth:`transport_actions` per arriving
    chunk and :meth:`take_worker_fault` at the frame barrier; each
    fired event is appended to :attr:`injected` (and forwarded to
    :attr:`sink`, which the multiplexer points at its service-level
    chaos log) and emitted as a ``chaos.<kind>`` telemetry span.
    """

    armed: tuple[tuple[ChaosEvent, float], ...] = ()
    worker_faults: int = 0
    exchange_index: int = 0
    injected: list[str] = field(default_factory=list)
    sink: "Callable[[str, str], None] | None" = field(
        default=None, repr=False)
    _fired: set[int] = field(default_factory=set, repr=False)

    def _record(self, ev: ChaosEvent, **resolved) -> None:
        names = {f.name for f in fields(ev)}
        desc = ev.describe(
            **{k: v for k, v in resolved.items() if k in names})
        self.injected.append(desc)
        if self.sink is not None:
            self.sink(ev.kind, desc)
        tm = get_collector()
        if tm.enabled:
            with tm.span(f"chaos.{ev.kind}") as sp:
                sp.probe("exchange", self.exchange_index)
                sp.probe("event", desc)
            tm.count("chaos.injected")

    @staticmethod
    def _anchor_sample(frac: float, total: int) -> int:
        return min(max(int(frac * total), 0), max(total - 1, 0))

    def transport_actions(self, start: int, size: int,
                          total: int) -> list[ChaosEvent]:
        """Events firing on the chunk covering ``[start, start+size)``.

        Each armed event fires exactly once, on the first chunk whose
        span covers its anchor sample; events within one chunk keep
        their anchor order.  :class:`ClientStall` is driver-side and
        never returned here (see :meth:`client_stalls`).
        """
        out: list[ChaosEvent] = []
        end = start + size
        for i, (ev, frac) in enumerate(self.armed):
            if i in self._fired or isinstance(ev, ClientStall):
                continue
            anchor = self._anchor_sample(frac, total)
            if start <= anchor < end:
                self._fired.add(i)
                self._record(ev, at_frac=frac)
                out.append(ev)
        return out

    def client_stalls(self, start: int, size: int,
                      total: int) -> list[ClientStall]:
        """Driver-side stalls anchored inside this chunk's span."""
        out: list[ClientStall] = []
        end = start + size
        for i, (ev, frac) in enumerate(self.armed):
            if i in self._fired or not isinstance(ev, ClientStall):
                continue
            if start <= self._anchor_sample(frac, total) < end:
                self._fired.add(i)
                self._record(ev, at_frac=frac)
                out.append(ev)
        return out

    def take_worker_fault(self) -> bool:
        """Consume one armed worker fault (``True`` at most
        ``worker_faults`` times per exchange)."""
        if self.worker_faults <= 0:
            return False
        self.worker_faults -= 1
        self._record(WorkerFault())
        return True


@dataclass(frozen=True)
class ChaosConfig:
    """The serializable chaos section of a scenario.

    ``intensity`` scales every event's trigger probability (0 = chaos
    off, 1 = the events' configured probabilities); ``events`` defaults
    to the standard mix.  :meth:`plan` realises the section into the
    :class:`ChaosPlan` the serving layer consumes.
    """

    intensity: float = 1.0
    seed: int = 0
    events: tuple[ChaosEvent, ...] = DEFAULT_CHAOS_EVENTS

    def __post_init__(self) -> None:
        if self.intensity < 0:
            raise ValueError("intensity must be >= 0")
        object.__setattr__(self, "events", tuple(self.events))

    def plan(self) -> ChaosPlan | None:
        """The realized plan, or ``None`` when intensity is zero."""
        if self.intensity <= 0:
            return None
        return ChaosPlan(self.events, seed=self.seed).scaled(
            self.intensity)

    # -- serialization (kind-keyed, like fault plans) --------------------

    def to_dict(self) -> dict:
        """Plain data, each event tagged with its ``kind``."""
        import dataclasses

        events = []
        for ev in self.events:
            d = {"kind": ev.kind}
            d.update(dataclasses.asdict(ev))
            events.append(d)
        return {"intensity": self.intensity, "seed": self.seed,
                "events": events}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        """Inverse of :meth:`to_dict` (unknown kinds/fields raise)."""
        events = []
        for spec in data.get("events", ()):
            spec = dict(spec)
            kind = spec.pop("kind", None)
            ev_cls = _EVENT_TYPES.get(kind)
            if ev_cls is None:
                raise ValueError(
                    f"unknown chaos event kind {kind!r}; "
                    f"known: {sorted(_EVENT_TYPES)}"
                )
            known = {f.name for f in fields(ev_cls)}
            unknown = sorted(set(spec) - known)
            if unknown:
                raise ValueError(
                    f"unknown chaos event {kind!r} field(s) {unknown}; "
                    f"known: {sorted(known)}"
                )
            events.append(ev_cls(**spec))
        return cls(
            intensity=float(data.get("intensity", 1.0)),
            seed=int(data.get("seed", 0)),
            events=tuple(events) if "events" in data
            else DEFAULT_CHAOS_EVENTS,
        )
