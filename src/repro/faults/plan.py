"""Deterministic fault injection for BackFi exchanges.

A :class:`FaultPlan` is a seedable list of typed fault events -- the
failure modes a deployed backscatter link actually meets: blockers
stepping into the channel mid-packet, co-channel interference bursts,
wake-up detector misses, tag clock drift, energy brownouts that truncate
the modulated tail, and ADC saturation episodes.

Determinism contract
--------------------
``plan.realize(exchange_index)`` is a pure function of
``(plan.seed, exchange_index)``: which events trigger, where their
windows land and what waveform noise they add never depend on worker
count, scheduling or the session's own RNG stream.  The session RNG is
untouched, so a plan with no triggered events is bit-identical to no
plan at all, and a sweep over faulty links caches and parallelises
exactly like a clean one.

Each applied event emits a ``fault.<kind>`` telemetry span, so
``repro trace`` shows injected faults next to the decode-stage margins.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import ClassVar, Sequence

import numpy as np

from ..channel.dynamics import (
    burst_interference,
    clock_drift,
    gain_step,
    hard_clip,
)
from ..telemetry import get_collector

__all__ = [
    "AdcSaturation",
    "Blocker",
    "Brownout",
    "ClockDrift",
    "DetectorMiss",
    "FaultEvent",
    "FaultPlan",
    "FaultRealization",
    "InterferenceBurst",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one typed failure mode with a trigger probability."""

    probability: float = 1.0
    """Chance this event fires on any given exchange (i.i.d. across
    exchange indices, from the plan's seed)."""

    kind: ClassVar[str] = "event"

    def describe(self, **resolved) -> str:
        """Short label, e.g. ``blocker(gain_db=-30)``.

        ``resolved`` overrides field values drawn per exchange (e.g. a
        window start drawn from the plan stream), so the label records
        what actually happened rather than the ``-1`` draw sentinel.
        """
        parts = []
        for f in fields(self):
            if f.name == "probability":
                continue
            value = resolved.get(f.name, getattr(self, f.name))
            parts.append(f"{f.name}={value:g}")
        return f"{self.kind}({', '.join(parts)})"


@dataclass(frozen=True)
class Blocker(FaultEvent):
    """Mid-packet channel gain step on the backscatter path.

    A person or object crossing the tag<->reader path drops the channel
    gain by ``gain_db`` for a window of the packet.  ``start_frac`` may
    be negative to draw the window start uniformly per exchange.
    """

    gain_db: float = -30.0
    start_frac: float = -1.0
    """Window start as a fraction of the packet; negative = draw
    uniformly in [0.1, 0.5] per exchange."""
    duration_frac: float = 0.6

    kind: ClassVar[str] = "blocker"


@dataclass(frozen=True)
class InterferenceBurst(FaultEvent):
    """Co-channel interference burst at the reader's receive antenna."""

    inr_db: float = 25.0
    """Burst power over the thermal noise floor."""
    start_frac: float = -1.0
    duration_frac: float = 0.4

    kind: ClassVar[str] = "interference"


@dataclass(frozen=True)
class DetectorMiss(FaultEvent):
    """The tag's wake-up detector misses the AP preamble entirely.

    The tag never backscatters this exchange; its queued data is not
    consumed (the reader sees only self-interference and noise).
    """

    kind: ClassVar[str] = "detector-miss"


@dataclass(frozen=True)
class ClockDrift(FaultEvent):
    """Tag clock / symbol-rate drift.

    The tag's oscillator runs ``ppm`` parts-per-million fast, so its
    chip boundaries slide against the reader's MRC windows -- the later
    the symbol, the larger the misalignment.
    """

    ppm: float = 1000.0

    kind: ClassVar[str] = "clock-drift"


@dataclass(frozen=True)
class Brownout(FaultEvent):
    """Energy brownout: the harvester dies mid-frame.

    The tag's reflection is truncated after ``survive_frac`` of the
    post-wake window, cutting off the modulated tail (and usually the
    frame CRC with it).
    """

    survive_frac: float = 0.5

    kind: ClassVar[str] = "brownout"


@dataclass(frozen=True)
class AdcSaturation(FaultEvent):
    """Front-end saturation episode at the reader.

    For a window of the packet the converter rails clamp at
    ``clip_db_below_peak`` dB below the packet's peak amplitude --
    a strong transient (or AGC mis-track) that clips the composite
    received signal.
    """

    clip_db_below_peak: float = 12.0
    start_frac: float = -1.0
    duration_frac: float = 0.3

    kind: ClassVar[str] = "adc-saturation"


@dataclass(frozen=True)
class FaultPlan:
    """A seedable, typed schedule of fault events.

    Parameters
    ----------
    events:
        The fault events that may trigger each exchange.
    seed:
        Root of the plan's private random stream.  All realisations are
        pure functions of ``(seed, exchange_index)``.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0):
        object.__setattr__(self, "events", tuple(events))
        object.__setattr__(self, "seed", int(seed))

    def realize(self, exchange_index: int = 0) -> "FaultRealization":
        """Draw which events fire on one exchange (deterministically)."""
        rng = np.random.default_rng(np.random.SeedSequence(
            self.seed, spawn_key=(int(exchange_index),)))
        triggered = []
        for ev in self.events:
            u = float(rng.random())  # always drawn: stream stays aligned
            if u < ev.probability:
                triggered.append(ev)
        return FaultRealization(events=tuple(triggered), rng=rng,
                                exchange_index=int(exchange_index))


@dataclass
class FaultRealization:
    """The events that fire on one exchange, plus their private RNG.

    The session calls the ``apply_*`` hooks at fixed pipeline points;
    each applied event appends a description to :attr:`injected` and
    emits a ``fault.<kind>`` telemetry span.
    """

    events: tuple[FaultEvent, ...] = ()
    rng: np.random.Generator = field(
        default_factory=np.random.default_rng, repr=False)
    exchange_index: int = 0
    injected: list[str] = field(default_factory=list)

    def _of(self, cls) -> list:
        return [ev for ev in self.events if isinstance(ev, cls)]

    def _record(self, ev: FaultEvent, **resolved) -> None:
        names = {f.name for f in fields(ev)}
        desc = ev.describe(
            **{k: v for k, v in resolved.items() if k in names})
        self.injected.append(desc)
        tm = get_collector()
        if tm.enabled:
            with tm.span(f"fault.{ev.kind}") as sp:
                sp.probe("exchange", self.exchange_index)
                sp.probe("event", desc)
                for name, value in resolved.items():
                    sp.probe(name, value)
            tm.count("faults.injected")

    def _start_frac(self, configured: float) -> float:
        """A configured window start, or a per-exchange uniform draw."""
        if configured >= 0.0:
            return configured
        return float(self.rng.uniform(0.1, 0.5))

    # -- hooks, in the order the session calls them ---------------------

    @property
    def detector_miss(self) -> bool:
        """Whether the tag's wake-up detector misses this exchange."""
        misses = self._of(DetectorMiss)
        for ev in misses:
            self._record(ev)
        return bool(misses)

    def apply_reflection(self, reflection: np.ndarray,
                         wake_index: int) -> np.ndarray:
        """Tag-side faults: clock drift, energy brownout."""
        for ev in self._of(ClockDrift):
            reflection = clock_drift(reflection, wake_index, ev.ppm)
            self._record(ev)
        for ev in self._of(Brownout):
            reflection = reflection.copy()
            cut = wake_index + int(
                ev.survive_frac * (reflection.size - wake_index))
            reflection[cut:] = 0.0
            self._record(ev, cut_index=cut)
        return reflection

    def apply_backscatter(self, backscatter: np.ndarray) -> np.ndarray:
        """Backscatter-channel faults: the mid-packet blocker."""
        for ev in self._of(Blocker):
            start = self._start_frac(ev.start_frac)
            backscatter = gain_step(backscatter, start,
                                    ev.duration_frac, ev.gain_db)
            self._record(ev, start_frac=start, gain_db=ev.gain_db)
        return backscatter

    def apply_rx(self, y: np.ndarray,
                 noise_floor_mw: float) -> np.ndarray:
        """Receiver-side faults: interference bursts, ADC saturation."""
        for ev in self._of(InterferenceBurst):
            start = self._start_frac(ev.start_frac)
            power = noise_floor_mw * 10.0 ** (ev.inr_db / 10.0)
            y = y + burst_interference(y.size, start, ev.duration_frac,
                                       power, self.rng)
            self._record(ev, start_frac=start, inr_db=ev.inr_db)
        for ev in self._of(AdcSaturation):
            start = self._start_frac(ev.start_frac)
            peak = float(np.max(np.abs(y))) if y.size else 0.0
            level = peak * 10.0 ** (-ev.clip_db_below_peak / 20.0)
            y = hard_clip(y, start, ev.duration_frac, level)
            self._record(ev, start_frac=start, clip_level=level)
        return y
