"""Bit-level utilities: packing, PN sequences and Gray coding.

Throughout the code base a *bit array* is a 1-D ``numpy`` array of dtype
``uint8`` containing only 0/1 values, ordered LSB-first within each byte
(the 802.11 serialisation order).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_from_bytes",
    "bytes_from_bits",
    "bits_from_int",
    "int_from_bits",
    "random_bits",
    "pn_sequence",
    "barker_like_sequence",
    "gray_encode",
    "gray_decode",
    "hamming_distance",
    "bit_errors",
]


def bits_from_bytes(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Expand bytes into an LSB-first bit array.

    >>> bits_from_bytes(b"\\x01").tolist()
    [1, 0, 0, 0, 0, 0, 0, 0]
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr, bitorder="little")


def bytes_from_bits(bits: np.ndarray) -> bytes:
    """Pack an LSB-first bit array back into bytes.

    The bit array length must be a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    return np.packbits(bits, bitorder="little").tobytes()


def bits_from_int(value: int, width: int) -> np.ndarray:
    """Return ``width`` bits of ``value``, LSB first."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)


def int_from_bits(bits: np.ndarray) -> int:
    """Inverse of :func:`bits_from_int` (LSB-first)."""
    bits = np.asarray(bits, dtype=np.uint8)
    return int(sum(int(b) << i for i, b in enumerate(bits)))


def random_bits(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """Return ``n`` uniformly random bits."""
    rng = rng or np.random.default_rng()
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def pn_sequence(n: int, seed: int = 0x5A) -> np.ndarray:
    """Deterministic pseudo-noise bit sequence from a 16-bit Fibonacci LFSR.

    The taps (16, 14, 13, 11) give a maximal-length sequence; the same
    ``seed`` always yields the same sequence, which is how the tag and the
    reader share preamble knowledge.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    state = seed & 0xFFFF
    if state == 0:
        state = 1  # the all-zero LFSR state is absorbing
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        bit = (
            (state >> 0) ^ (state >> 2) ^ (state >> 3) ^ (state >> 5)
        ) & 1
        state = (state >> 1) | (bit << 15)
        out[i] = state & 1
    return out


def barker_like_sequence(n: int, seed: int = 0x35) -> np.ndarray:
    """A +-1 float sequence with high autocorrelation peak, length ``n``.

    Used for the AP's 16-bit OOK identification preamble and the tag's
    synchronisation preamble.
    """
    return 1.0 - 2.0 * pn_sequence(n, seed=seed).astype(np.float64)


def gray_encode(value: np.ndarray | int) -> np.ndarray | int:
    """Binary -> Gray code."""
    v = np.asarray(value)
    g = v ^ (v >> 1)
    return int(g) if np.isscalar(value) or g.ndim == 0 else g


def gray_decode(value: np.ndarray | int) -> np.ndarray | int:
    """Gray code -> binary."""
    v = np.asarray(value).copy()
    shift = 1
    while True:
        shifted = v >> shift
        if not np.any(shifted):
            break
        v = v ^ shifted
        shift <<= 1
    return int(v) if np.isscalar(value) or v.ndim == 0 else v


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of differing positions between two equal-length bit arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def bit_errors(tx: np.ndarray, rx: np.ndarray) -> tuple[int, int]:
    """Return ``(errors, total)`` over the overlapping prefix of two arrays."""
    n = min(len(tx), len(rx))
    return hamming_distance(tx[:n], rx[:n]), n
