"""Unit conversions and power helpers shared across the stack."""

from __future__ import annotations

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watt",
    "watt_to_dbm",
    "power",
    "rms",
    "normalize_power",
    "snr_db",
    "evm_to_snr_db",
    "wavelength",
]


def db_to_linear(db: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio in dB to linear scale."""
    return 10.0 ** (np.asarray(db, dtype=np.float64) / 10.0)


def linear_to_db(linear: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear power ratio to dB.  Zero maps to ``-inf``."""
    lin = np.asarray(linear, dtype=np.float64)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(lin)


def dbm_to_watt(dbm: float) -> float:
    """Convert dBm to watts."""
    return 1e-3 * 10.0 ** (dbm / 10.0)


def watt_to_dbm(watt: float) -> float:
    """Convert watts to dBm."""
    if watt <= 0:
        return float("-inf")
    return 10.0 * np.log10(watt / 1e-3)


def power(x: np.ndarray) -> float:
    """Mean power of a complex sample vector."""
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return float(np.mean(np.abs(x) ** 2))


def rms(x: np.ndarray) -> float:
    """Root-mean-square amplitude."""
    return float(np.sqrt(power(x)))


def normalize_power(x: np.ndarray, target_power: float = 1.0) -> np.ndarray:
    """Scale ``x`` to the requested mean power."""
    p = power(x)
    if p == 0:
        return np.asarray(x).copy()
    return np.asarray(x) * np.sqrt(target_power / p)


def snr_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """SNR between a clean signal vector and a noise/error vector."""
    pn = power(noise)
    if pn == 0:
        return float("inf")
    return float(linear_to_db(power(signal) / pn))


def evm_to_snr_db(evm_rms: float) -> float:
    """Map RMS error-vector magnitude (linear fraction) to SNR in dB."""
    if evm_rms <= 0:
        return float("inf")
    return float(-20.0 * np.log10(evm_rms))


def wavelength(freq_hz: float) -> float:
    """Free-space wavelength for a carrier frequency."""
    from ..constants import SPEED_OF_LIGHT

    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    return SPEED_OF_LIGHT / freq_hz
