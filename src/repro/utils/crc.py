"""Cyclic redundancy checks used by the tag frame format and WiFi FCS.

Implementations are table-free but vectorised enough for the frame sizes
used here (a few thousand bits).
"""

from __future__ import annotations

import numpy as np

from .bits import bits_from_int

__all__ = ["crc8", "crc16_ccitt", "crc32", "append_crc16", "check_crc16"]


def _crc_bits(bits: np.ndarray, poly: int, width: int, init: int,
              xor_out: int) -> int:
    """Generic MSB-first CRC over a bit array."""
    reg = init
    mask = (1 << width) - 1
    for b in np.asarray(bits, dtype=np.uint8):
        fb = ((reg >> (width - 1)) & 1) ^ int(b)
        reg = (reg << 1) & mask
        if fb:
            reg ^= poly
    return reg ^ xor_out


def crc8(bits: np.ndarray) -> int:
    """CRC-8 (poly 0x07), used for the tag frame header."""
    return _crc_bits(bits, poly=0x07, width=8, init=0x00, xor_out=0x00)


def crc16_ccitt(bits: np.ndarray) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the tag payload check."""
    return _crc_bits(bits, poly=0x1021, width=16, init=0xFFFF, xor_out=0x0000)


def crc32(data: bytes) -> int:
    """IEEE 802.3 CRC-32 as used by the 802.11 FCS, over bytes."""
    reg = 0xFFFFFFFF
    for byte in data:
        reg ^= byte
        for _ in range(8):
            if reg & 1:
                reg = (reg >> 1) ^ 0xEDB88320
            else:
                reg >>= 1
    return reg ^ 0xFFFFFFFF


def append_crc16(bits: np.ndarray) -> np.ndarray:
    """Return ``bits`` with a 16-bit CRC appended (LSB-first)."""
    bits = np.asarray(bits, dtype=np.uint8)
    crc = crc16_ccitt(bits)
    return np.concatenate([bits, bits_from_int(crc, 16)])


def check_crc16(bits_with_crc: np.ndarray) -> bool:
    """Verify a frame produced by :func:`append_crc16`."""
    bits_with_crc = np.asarray(bits_with_crc, dtype=np.uint8)
    if bits_with_crc.size < 16:
        return False
    body, tail = bits_with_crc[:-16], bits_with_crc[-16:]
    expect = crc16_ccitt(body)
    from .bits import int_from_bits

    return int_from_bits(tail) == expect
