"""Trace replay: drive backscatter opportunities from an AP trace.

Reproduces the paper's Fig. 12a methodology: "replay the collected trace
using our WARP based BackFi AP implementation ... activate the tag only
at the times the AP is transmitting", then compute the average tag
throughput over the whole trace (idle time counts against throughput).

Running the full sample-level simulation for every burst of a 1 s trace
would be needlessly slow, so the replay samples a handful of bursts at
full fidelity to measure per-burst efficiency (protocol overhead +
decode success) and extrapolates over the trace -- the same
physical-layer behaviour applied to every burst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..channel.environment import Scene
from ..constants import SAMPLES_PER_US, SILENT_US
from ..link.session import run_backscatter_session
from ..reader.reader import BackFiReader
from ..tag.config import TagConfig
from ..tag.tag import BackFiTag
from .generator import ApTrace

__all__ = ["ReplayResult", "burst_payload_bits", "replay_trace"]

PROTOCOL_OVERHEAD_US = 16.0 + SILENT_US
"""ID preamble + silent period: airtime a burst loses before the tag
preamble even starts."""


@dataclass(frozen=True)
class ReplayResult:
    """Tag throughput achieved over one trace."""

    ap_id: int
    delivered_bits: float
    trace_duration_s: float
    busy_fraction: float
    n_usable_bursts: int
    n_bursts: int
    per_burst_success: float
    config: TagConfig | None = None

    @property
    def throughput_bps(self) -> float:
        """Average tag throughput over the whole trace (incl. idle)."""
        if self.trace_duration_s <= 0:
            return 0.0
        return self.delivered_bits / self.trace_duration_s


def burst_payload_bits(burst_duration_us: float, config: TagConfig,
                       preamble_us: float) -> int:
    """Tag info bits that fit in one burst (mirrors the tag's capacity).

    Shared with the discrete-event network simulator
    (:mod:`repro.link.simulator`), which uses it as the per-poll
    delivery capacity of each excitation burst.
    """
    from ..link.frames import CRC_BITS, HEADER_BITS

    data_us = burst_duration_us - PROTOCOL_OVERHEAD_US - preamble_us
    if data_us <= 0:
        return 0
    n_symbols = int(data_us * SAMPLES_PER_US) // config.samples_per_symbol
    coded = n_symbols * config.bits_per_symbol
    info = int(coded * config.code_rate_fraction) - 6
    return max(0, info - HEADER_BITS - CRC_BITS)


# Backwards-compatible private alias (pre-simulator callers).
_burst_payload_bits = burst_payload_bits


def probe_best_config(scene: Scene, *,
                      candidates: list[TagConfig] | None = None,
                      rng: np.random.Generator | None = None) -> TagConfig:
    """Rate adaptation for a placement: fastest config that decodes.

    Mirrors what a deployed BackFi tag/reader pair converges to: probe
    operating points from fastest down and keep the first that decodes
    on this scene's channels.
    """
    from ..link.budget import LinkBudget
    from ..reader.rate_adapt import required_snr_db
    from ..tag.config import all_tag_configs

    rng = rng or np.random.default_rng()
    if candidates is None:
        candidates = sorted(
            (c for c in all_tag_configs() if c.symbol_rate_hz >= 100e3),
            key=lambda c: -c.throughput_bps,
        )
    budget = LinkBudget()
    distance = float(np.hypot(
        scene.tag_pos[0] - scene.ap_pos[0],
        scene.tag_pos[1] - scene.ap_pos[1],
    ))
    for cfg in candidates:
        if budget.symbol_snr_db(distance, cfg) < required_snr_db(cfg) - 6:
            continue
        # Require two consecutive successes so the chosen point is
        # robust across bursts, not a lucky decode.
        ok = all(
            run_backscatter_session(
                scene, BackFiTag(cfg), BackFiReader(cfg),
                wifi_payload_bytes=2000, include_cts=False, rng=rng,
            ).ok
            for _ in range(2)
        )
        if ok:
            return cfg
    return TagConfig("bpsk", "1/2", 100e3)


def replay_trace(trace: ApTrace, scene: Scene,
                 config: TagConfig | None = None, *,
                 preamble_us: float = 32.0,
                 n_calibration_bursts: int = 3,
                 rng: np.random.Generator | None = None) -> ReplayResult:
    """Replay one AP trace with a tag at the scene's position.

    ``config=None`` runs rate adaptation first (the deployed behaviour):
    the fastest operating point that decodes on this scene's channels.
    ``n_calibration_bursts`` bursts are simulated at full sample fidelity
    to measure the decode success probability; every burst then
    contributes its protocol-capacity payload scaled by that probability.
    """
    rng = rng or np.random.default_rng()
    if config is None:
        config = probe_best_config(scene, rng=rng)
    usable = [b for b in trace.bursts
              if burst_payload_bits(b.duration_s * 1e6, config,
                                    preamble_us) > 0]
    if not usable:
        return ReplayResult(
            ap_id=trace.ap_id, delivered_bits=0.0,
            trace_duration_s=trace.duration_s,
            busy_fraction=trace.busy_fraction,
            n_usable_bursts=0, n_bursts=len(trace), per_burst_success=0.0,
            config=config,
        )

    # Full-fidelity calibration on a sample of bursts.
    n_cal = min(n_calibration_bursts, len(usable))
    cal_idx = rng.choice(len(usable), size=n_cal, replace=False)
    successes = 0
    for i in cal_idx:
        b = usable[int(i)]
        tag = BackFiTag(config, preamble_us=preamble_us)
        reader = BackFiReader(config)
        out = run_backscatter_session(
            scene, tag, reader,
            wifi_rate_mbps=b.rate_mbps,
            wifi_payload_bytes=b.payload_bytes,
            preamble_us=preamble_us,
            include_cts=False,
            rng=rng,
        )
        successes += int(out.ok)
    p_success = successes / n_cal

    delivered = sum(
        burst_payload_bits(b.duration_s * 1e6, config, preamble_us)
        for b in usable
    ) * p_success
    return ReplayResult(
        ap_id=trace.ap_id,
        delivered_bits=float(delivered),
        trace_duration_s=trace.duration_s,
        busy_fraction=trace.busy_fraction,
        n_usable_bursts=len(usable),
        n_bursts=len(trace),
        per_burst_success=p_success,
        config=config,
    )
