"""Synthetic loaded-network AP traces and replay (paper Fig. 12a)."""

from .generator import ApBurst, ApTrace, generate_ap_trace, \
    generate_testbed_traces
from .replay import ReplayResult, probe_best_config, replay_trace

__all__ = [
    "ApBurst",
    "ApTrace",
    "generate_ap_trace",
    "generate_testbed_traces",
    "ReplayResult",
    "probe_best_config",
    "replay_trace",
]
