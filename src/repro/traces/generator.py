"""Synthetic loaded-network WiFi traffic traces.

The paper replays captured AP traces from public datasets [24, 41, 47]
("captured for a wide variety of scenarios for heavily loaded networks")
to measure backscatter throughput under realistic channel occupancy
(Fig. 12a).  Those captures are not redistributable here, so this module
generates statistically similar traces: per-AP busy fractions drawn from
the heavy-load regime reported for hotspot measurements, packet lengths
from a mix of small (ACK/VoIP-ish) and full-MTU frames, and contention
gaps with exponential tails.

Only AP *transmissions* matter to BackFi (the tag backscatters only while
its reader transmits), so a trace is a sorted list of AP TX bursts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..wifi.params import SUPPORTED_RATES_MBPS, duration_us

__all__ = ["ApBurst", "ApTrace", "generate_ap_trace", "generate_testbed_traces"]


@dataclass(frozen=True)
class ApBurst:
    """One AP transmission: start time, payload size and bitrate."""

    start_s: float
    payload_bytes: int
    rate_mbps: int

    @property
    def duration_s(self) -> float:
        """Air time of the burst."""
        return duration_us(self.payload_bytes, self.rate_mbps) * 1e-6

    @property
    def end_s(self) -> float:
        """Burst end time."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class ApTrace:
    """A sequence of AP transmissions over a capture window."""

    bursts: tuple[ApBurst, ...]
    duration_s: float
    ap_id: int = 0

    @property
    def busy_fraction(self) -> float:
        """Fraction of time the AP is transmitting."""
        if self.duration_s <= 0:
            return 0.0
        return sum(b.duration_s for b in self.bursts) / self.duration_s

    def __len__(self) -> int:
        return len(self.bursts)


def generate_ap_trace(duration_s: float = 1.0, *,
                      target_busy_fraction: float | None = None,
                      ap_id: int = 0,
                      rng: np.random.Generator | None = None) -> ApTrace:
    """Generate one AP's transmit trace for a loaded network.

    ``target_busy_fraction`` defaults to a draw from the heavy-load
    distribution (median ~0.75, range ~0.5-0.95): in a fully loaded cell
    the AP holds the channel most of the time but loses airtime to
    client traffic and contention.
    """
    rng = rng or np.random.default_rng()
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if target_busy_fraction is None:
        # Heavily loaded, AP-dominant cells: the AP holds the channel
        # most of the time (median ~0.85).
        target_busy_fraction = float(np.clip(rng.beta(8, 1.5), 0.4, 0.97))
    if not 0 < target_busy_fraction <= 1:
        raise ValueError("busy fraction must be in (0, 1]")

    # Rates biased toward the middle of the table (rate adaptation in a
    # real deployment); payloads bimodal: TCP ACKs vs full aggregates.
    rates = np.array(SUPPORTED_RATES_MBPS)
    rate_weights = np.array([0.04, 0.04, 0.08, 0.12, 0.27, 0.2, 0.15, 0.1])

    bursts: list[ApBurst] = []
    t = float(rng.uniform(0.0, 2e-3))
    while t < duration_s:
        if rng.uniform() < 0.35:
            payload = int(rng.integers(60, 400))
        else:
            payload = int(rng.integers(1000, 1600))
        rate = int(rng.choice(rates, p=rate_weights))
        burst = ApBurst(start_s=t, payload_bytes=payload, rate_mbps=rate)
        if burst.end_s > duration_s:
            break
        bursts.append(burst)
        # Idle gap sized to hit the busy-fraction target on average.
        gap_mean = burst.duration_s * (1.0 - target_busy_fraction) \
            / target_busy_fraction
        gap = float(rng.exponential(max(gap_mean, 1e-6)))
        t = burst.end_s + max(gap, 30e-6)  # DIFS-ish minimum spacing
    return ApTrace(bursts=tuple(bursts), duration_s=duration_s, ap_id=ap_id)


def generate_testbed_traces(n_aps: int = 20, duration_s: float = 1.0, *,
                            seed: int = 2015) -> list[ApTrace]:
    """The paper's "20 different APs" capture set, synthesised."""
    rng = np.random.default_rng(seed)
    return [
        generate_ap_trace(duration_s, ap_id=i, rng=rng)
        for i in range(n_aps)
    ]
