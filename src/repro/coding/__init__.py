"""Channel coding: the 802.11 convolutional code, interleaver, scrambler."""

from .convolutional import (
    CODE_RATES,
    ConvolutionalCode,
    conv_encode,
    depuncture,
    puncture,
)
from .interleaver import deinterleave, interleave, interleave_indices
from .scrambler import descramble, scramble, scrambler_sequence
from .viterbi import viterbi_decode, viterbi_decode_soft

__all__ = [
    "CODE_RATES",
    "ConvolutionalCode",
    "conv_encode",
    "depuncture",
    "puncture",
    "deinterleave",
    "interleave",
    "interleave_indices",
    "descramble",
    "scramble",
    "scrambler_sequence",
    "viterbi_decode",
    "viterbi_decode_soft",
]
