"""The 802.11 convolutional code (K=7, g0=133o, g1=171o) with puncturing.

The same code is used twice in this reproduction, exactly as in the paper:
once inside the WiFi OFDM PHY and once as the BackFi tag's channel code
(Sec. 4.1: "rate 1/2 convolutional encoder with constraint length of 7").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "CODE_RATES",
    "ConvolutionalCode",
    "conv_encode",
    "puncture",
    "depuncture",
]

G0 = 0o133
G1 = 0o171
CONSTRAINT = 7
N_STATES = 1 << (CONSTRAINT - 1)

# Puncturing patterns from IEEE 802.11-2016 17.3.5.7 (1 = keep).
_PUNCTURE_PATTERNS = {
    "1/2": np.array([1, 1], dtype=bool),
    "2/3": np.array([1, 1, 1, 0], dtype=bool),
    "3/4": np.array([1, 1, 1, 0, 0, 1], dtype=bool),
}

CODE_RATES = tuple(_PUNCTURE_PATTERNS)


def _parity_table() -> np.ndarray:
    """Precomputed parity of (state << 1 | input) & generator for both outputs.

    Returns an array of shape (2, 2*N_STATES): output bit for generator g
    when the shift register holds value ``v`` (7 bits, newest bit is MSB
    of the combined value ``input << 6 | state`` -- see below).
    """
    v = np.arange(1 << CONSTRAINT, dtype=np.uint32)
    out = np.empty((2, v.size), dtype=np.uint8)
    for gi, g in enumerate((G0, G1)):
        masked = v & g
        # popcount parity
        p = masked
        p ^= p >> 16
        p ^= p >> 8
        p ^= p >> 4
        p ^= p >> 2
        p ^= p >> 1
        out[gi] = (p & 1).astype(np.uint8)
    return out


_PARITY = _parity_table()


@dataclass(frozen=True)
class ConvolutionalCode:
    """A K=7 convolutional code at one of the 802.11 puncturing rates."""

    rate: str = "1/2"

    def __post_init__(self) -> None:
        if self.rate not in _PUNCTURE_PATTERNS:
            raise ValueError(
                f"unsupported rate {self.rate!r}; choose from {CODE_RATES}"
            )

    @property
    def rate_fraction(self) -> float:
        """The code rate as a float (1/2, 2/3, 3/4)."""
        num, den = self.rate.split("/")
        return int(num) / int(den)

    def coded_length(self, n_info_bits: int) -> int:
        """Number of coded bits produced for ``n_info_bits`` input bits."""
        mother = 2 * n_info_bits
        pattern = _PUNCTURE_PATTERNS[self.rate]
        full, rem = divmod(mother, pattern.size)
        return int(full * np.count_nonzero(pattern)
                   + np.count_nonzero(pattern[:rem]))

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode (zero-state start, no tail appended) and puncture."""
        mother = conv_encode(bits)
        return puncture(mother, self.rate)

    def encode_with_tail(self, bits: np.ndarray) -> np.ndarray:
        """Append K-1 zero tail bits (trellis termination) then encode."""
        bits = np.asarray(bits, dtype=np.uint8)
        tail = np.zeros(CONSTRAINT - 1, dtype=np.uint8)
        return self.encode(np.concatenate([bits, tail]))


def conv_encode(bits: np.ndarray) -> np.ndarray:
    """Rate-1/2 mother-code encoding of a bit array (zero initial state).

    Output interleaves the two generator streams: ``a0 b0 a1 b1 ...``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n = bits.size
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    # Build the 7-bit register value at each step: newest bit is LSB in
    # standard 802.11 convention x[n], x[n-1], ..., x[n-6] dotted with g.
    padded = np.concatenate([np.zeros(CONSTRAINT - 1, dtype=np.uint8), bits])
    # Window of 7 bits ending at each position, newest first.
    # reg = sum_{k=0..6} x[n-k] << (6-k): newest bit is the MSB, so the
    # octal generator masks match the 802.11 tap definition.
    weights = 1 << np.arange(CONSTRAINT)
    windows = np.lib.stride_tricks.sliding_window_view(padded, CONSTRAINT)
    reg = windows @ weights.astype(np.uint32)
    out = np.empty(2 * n, dtype=np.uint8)
    out[0::2] = _PARITY[0, reg]
    out[1::2] = _PARITY[1, reg]
    return out


@lru_cache(maxsize=64)
def _keep_mask(rate: str, n_bits: int) -> np.ndarray:
    """Tiled (read-only) puncturing keep-mask for an ``n_bits`` stream.

    Every packet at a given rate and length reuses the same mask, so the
    tiling cost is paid once rather than per puncture/depuncture call.
    """
    mask = np.resize(_PUNCTURE_PATTERNS[rate], n_bits)
    mask.setflags(write=False)
    return mask


def puncture(mother_bits: np.ndarray, rate: str) -> np.ndarray:
    """Remove bits from the rate-1/2 stream per the 802.11 pattern."""
    if rate not in _PUNCTURE_PATTERNS:
        raise KeyError(rate)
    mother_bits = np.asarray(mother_bits)
    keep = _keep_mask(rate, mother_bits.size)
    return mother_bits[keep]


def depuncture(punctured: np.ndarray, rate: str,
               n_mother_bits: int, *, erasure: float = 0.0) -> np.ndarray:
    """Re-insert erasures where bits were punctured (for soft decoding).

    ``punctured`` may be hard bits mapped to +-1 or soft LLRs; erased
    positions are filled with ``erasure`` (zero LLR = no information).
    """
    if rate not in _PUNCTURE_PATTERNS:
        raise KeyError(rate)
    keep = _keep_mask(rate, n_mother_bits)
    if np.count_nonzero(keep) != np.asarray(punctured).size:
        raise ValueError(
            f"punctured length {np.asarray(punctured).size} inconsistent "
            f"with {n_mother_bits} mother bits at rate {rate}"
        )
    out = np.full(n_mother_bits, erasure, dtype=np.float64)
    out[keep] = punctured
    return out
