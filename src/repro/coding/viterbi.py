"""Vectorised Viterbi decoder for the K=7 802.11 convolutional code.

Supports hard decisions and soft (LLR) inputs, and the punctured rates via
:func:`repro.coding.convolutional.depuncture` (punctured positions carry a
zero LLR, i.e. no branch-metric contribution).
"""

from __future__ import annotations

import numpy as np

from .convolutional import _PARITY, CONSTRAINT, N_STATES, depuncture

__all__ = ["viterbi_decode", "viterbi_decode_soft",
           "viterbi_decode_soft_batch"]


def _build_trellis() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Precompute predecessor states, inputs and branch output indices.

    For each next-state ``ns``:
      * ``pred0[ns], pred1[ns]`` -- the two predecessor states,
      * ``inp[ns]``              -- the information bit consumed,
      * ``oidx0[ns], oidx1[ns]`` -- branch output pair index ``2*c0 + c1``.
    """
    ns = np.arange(N_STATES)
    inp = (ns >> (CONSTRAINT - 2)) & 1
    pred0 = (ns & (N_STATES // 2 - 1)) << 1
    pred1 = pred0 | 1
    reg0 = (inp << (CONSTRAINT - 1)) | pred0
    reg1 = (inp << (CONSTRAINT - 1)) | pred1
    oidx0 = 2 * _PARITY[0, reg0] + _PARITY[1, reg0]
    oidx1 = 2 * _PARITY[0, reg1] + _PARITY[1, reg1]
    return pred0, pred1, inp, np.stack([oidx0, oidx1])


_PRED0, _PRED1, _INPUT_BIT, _OIDX = _build_trellis()


def viterbi_decode_soft(llrs: np.ndarray, *, terminated: bool = True,
                        return_metric: bool = False):
    """Decode a rate-1/2 mother-code LLR stream.

    Parameters
    ----------
    llrs:
        One LLR per mother coded bit (length must be even).  Positive
        values favour bit 0.  Punctured positions must already be filled
        with zeros (see :func:`depuncture`).
    terminated:
        When true, the encoder was driven back to the zero state with
        K-1 tail bits; the traceback starts from state 0 and the tail
        bits are stripped from the output.
    return_metric:
        Also return the winning path metric (the accumulated correlation
        between the survivor path's coded bits and the LLRs).  Its
        natural normalisation is ``metric / sum(|llrs|)``: 1.0 means the
        decoded codeword agrees with every soft bit, values near 0 mean
        the decoder was guessing -- the telemetry layer's decode-health
        probe.

    Returns
    -------
    numpy.ndarray
        Decoded information bits (tail removed when ``terminated``), or
        a ``(bits, metric)`` tuple when ``return_metric`` is set.
    """
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.size % 2:
        raise ValueError("LLR stream length must be even (2 bits/step)")
    n_steps = llrs.size // 2
    if n_steps == 0:
        empty = np.empty(0, dtype=np.uint8)
        return (empty, 0.0) if return_metric else empty

    l0 = llrs[0::2]
    l1 = llrs[1::2]
    # Branch metric for output pair (c0, c1): sum of +llr for 0-bits and
    # -llr for 1-bits; index j = 2*c0 + c1.
    bm = np.empty((n_steps, 4))
    bm[:, 0] = l0 + l1
    bm[:, 1] = l0 - l1
    bm[:, 2] = -l0 + l1
    bm[:, 3] = -l0 - l1

    path_metric = np.full(N_STATES, -1e18)
    path_metric[0] = 0.0
    decisions = np.empty((n_steps, N_STATES), dtype=np.uint8)

    for t in range(n_steps):
        bmt = bm[t]
        cand0 = path_metric[_PRED0] + bmt[_OIDX[0]]
        cand1 = path_metric[_PRED1] + bmt[_OIDX[1]]
        take1 = cand1 > cand0
        decisions[t] = take1
        path_metric = np.where(take1, cand1, cand0)

    state = 0 if terminated else int(np.argmax(path_metric))
    final_metric = float(path_metric[state])
    bits = np.empty(n_steps, dtype=np.uint8)
    for t in range(n_steps - 1, -1, -1):
        bits[t] = _INPUT_BIT[state]
        prev = _PRED1[state] if decisions[t, state] else _PRED0[state]
        state = prev

    if terminated:
        if n_steps < CONSTRAINT - 1:
            raise ValueError("terminated stream shorter than the tail")
        bits = bits[: n_steps - (CONSTRAINT - 1)]
    return (bits, final_metric) if return_metric else bits


def viterbi_decode_soft_batch(llrs: np.ndarray, *,
                              terminated: bool = True,
                              return_metric: bool = False):
    """Decode ``B`` equal-length LLR streams in one trellis sweep.

    ``llrs`` has shape ``(B, L)`` with ``L`` even.  The add-compare-
    select update and the traceback are the same elementwise float64
    operations as :func:`viterbi_decode_soft` with a leading batch
    axis, so every row of the output is bit-identical to decoding that
    row alone -- the batch form only amortises the per-step Python
    dispatch across the whole batch (the dominant cost of the decoder,
    and the reason :class:`repro.reader.batch.BatchedDecoder` exists).

    Returns decoded bits of shape ``(B, n_info)`` (plus a length-``B``
    metric array when ``return_metric`` is set).
    """
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.ndim != 2:
        raise ValueError("batch LLRs must be 2-D (B, L)")
    n_batch, length = llrs.shape
    if length % 2:
        raise ValueError("LLR stream length must be even (2 bits/step)")
    n_steps = length // 2
    if n_steps == 0 or n_batch == 0:
        empty = np.empty((n_batch, 0), dtype=np.uint8)
        metrics = np.zeros(n_batch)
        return (empty, metrics) if return_metric else empty

    l0 = llrs[:, 0::2]
    l1 = llrs[:, 1::2]
    bm = np.empty((n_batch, n_steps, 4))
    bm[:, :, 0] = l0 + l1
    bm[:, :, 1] = l0 - l1
    bm[:, :, 2] = -l0 + l1
    bm[:, :, 3] = -l0 - l1

    path_metric = np.full((n_batch, N_STATES), -1e18)
    path_metric[:, 0] = 0.0
    decisions = np.empty((n_steps, n_batch, N_STATES), dtype=np.uint8)

    for t in range(n_steps):
        bmt = bm[:, t]
        cand0 = path_metric[:, _PRED0] + bmt[:, _OIDX[0]]
        cand1 = path_metric[:, _PRED1] + bmt[:, _OIDX[1]]
        take1 = cand1 > cand0
        decisions[t] = take1
        path_metric = np.where(take1, cand1, cand0)

    if terminated:
        state = np.zeros(n_batch, dtype=np.intp)
    else:
        state = np.argmax(path_metric, axis=1)
    final_metric = path_metric[np.arange(n_batch), state]
    bits = np.empty((n_batch, n_steps), dtype=np.uint8)
    rows = np.arange(n_batch)
    for t in range(n_steps - 1, -1, -1):
        bits[:, t] = _INPUT_BIT[state]
        take1 = decisions[t, rows, state].astype(bool)
        state = np.where(take1, _PRED1[state], _PRED0[state])

    if terminated:
        if n_steps < CONSTRAINT - 1:
            raise ValueError("terminated stream shorter than the tail")
        bits = bits[:, : n_steps - (CONSTRAINT - 1)]
    return (bits, final_metric) if return_metric else bits


def viterbi_decode(coded_bits: np.ndarray, rate: str = "1/2", *,
                   terminated: bool = True,
                   n_info_bits: int | None = None) -> np.ndarray:
    """Hard-decision decode of a (possibly punctured) coded bit stream.

    Parameters
    ----------
    coded_bits:
        The received hard bits after puncturing.
    rate:
        "1/2", "2/3" or "3/4".
    terminated:
        Whether the encoder appended a K-1 zero tail.
    n_info_bits:
        Required for punctured rates (to size the mother stream); for
        rate 1/2 it is inferred from the input length.
    """
    coded_bits = np.asarray(coded_bits, dtype=np.float64)
    if rate == "1/2":
        n_mother = coded_bits.size
        llrs = 1.0 - 2.0 * coded_bits
    else:
        if n_info_bits is None:
            raise ValueError("n_info_bits required for punctured rates")
        total_steps = n_info_bits + (CONSTRAINT - 1 if terminated else 0)
        n_mother = 2 * total_steps
        llrs = depuncture(1.0 - 2.0 * coded_bits, rate, n_mother)
    return viterbi_decode_soft(llrs, terminated=terminated)
