"""IEEE 802.11 OFDM block interleaver (17.3.5.7).

Operates per OFDM symbol on ``n_cbps`` coded bits with ``n_bpsc`` bits per
subcarrier.  The two-permutation structure spreads adjacent coded bits
across subcarriers and alternates significance within a constellation
point.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["interleave", "deinterleave", "interleave_indices"]


@lru_cache(maxsize=None)
def interleave_indices(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Return ``idx`` such that ``out[idx[k]] = in[k]``.

    The permutation depends only on ``(n_cbps, n_bpsc)``, so results are
    cached (and returned read-only) -- the per-symbol interleave in the
    WiFi PHY becomes a single fancy-index.  The standard rates are primed
    below at import.
    """
    if n_cbps % 48:
        raise ValueError("n_cbps must be a multiple of 48")
    if n_bpsc * 48 != n_cbps:
        raise ValueError("n_cbps must equal 48 * n_bpsc")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    j.setflags(write=False)
    return j


for _n_bpsc in (1, 2, 4, 6):  # BPSK, QPSK, 16-QAM, 64-QAM
    interleave_indices(48 * _n_bpsc, _n_bpsc)
del _n_bpsc


def interleave(bits: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Interleave one OFDM symbol's worth of coded bits."""
    bits = np.asarray(bits)
    idx = interleave_indices(bits.size, n_bpsc)
    out = np.empty_like(bits)
    out[idx] = bits
    return out


def deinterleave(bits: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Inverse of :func:`interleave` (works on bits or soft values)."""
    bits = np.asarray(bits)
    idx = interleave_indices(bits.size, n_bpsc)
    return bits[idx]
