"""IEEE 802.11 frame-synchronous scrambler (x^7 + x^4 + 1)."""

from __future__ import annotations

import numpy as np

__all__ = ["scramble", "descramble", "scrambler_sequence"]


def scrambler_sequence(n: int, seed: int = 0x7F) -> np.ndarray:
    """Output of the 7-bit LFSR (taps x^7, x^4) for ``n`` steps."""
    if not 0 < seed < 128:
        raise ValueError("seed must be a non-zero 7-bit value")
    state = seed
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        bit = ((state >> 6) ^ (state >> 3)) & 1
        state = ((state << 1) | bit) & 0x7F
        out[i] = bit
    return out


def scramble(bits: np.ndarray, seed: int = 0x7F) -> np.ndarray:
    """XOR the data with the scrambler sequence (self-inverse)."""
    bits = np.asarray(bits, dtype=np.uint8)
    return bits ^ scrambler_sequence(bits.size, seed)


def descramble(bits: np.ndarray, seed: int = 0x7F) -> np.ndarray:
    """Alias of :func:`scramble`; the operation is an involution."""
    return scramble(bits, seed)
