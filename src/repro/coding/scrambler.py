"""IEEE 802.11 frame-synchronous scrambler (x^7 + x^4 + 1).

The generator polynomial is primitive, so the 7-bit LFSR visits all 127
non-zero states in one cycle regardless of the seed -- the seed only
selects the starting phase.  One pass over that cycle at import time
replaces the per-bit Python loop with a table lookup: the sequence for
any ``(n, seed)`` is a wrapped slice of the canonical 127-bit period.
The original stepwise LFSR survives as :func:`_sequence_direct`, the
reference that ``tests/test_fastpath.py`` and the perf benchmarks
compare against.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scramble", "descramble", "scrambler_sequence"]

_PERIOD = 127


def _sequence_direct(n: int, seed: int) -> np.ndarray:
    """Stepwise LFSR reference (one Python iteration per output bit)."""
    state = seed
    out = np.empty(n, dtype=np.uint8)
    for i in range(n):
        bit = ((state >> 6) ^ (state >> 3)) & 1
        state = ((state << 1) | bit) & 0x7F
        out[i] = bit
    return out


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """One LFSR period plus the state -> cycle-phase map."""
    cycle = np.empty(_PERIOD, dtype=np.uint8)
    phase = np.zeros(128, dtype=np.intp)
    state = 0x7F
    for i in range(_PERIOD):
        phase[state] = i
        bit = ((state >> 6) ^ (state >> 3)) & 1
        cycle[i] = bit
        state = ((state << 1) | bit) & 0x7F
    cycle.setflags(write=False)
    phase.setflags(write=False)
    return cycle, phase

_CYCLE, _PHASE = _build_tables()


def scrambler_sequence(n: int, seed: int = 0x7F) -> np.ndarray:
    """Output of the 7-bit LFSR (taps x^7, x^4) for ``n`` steps."""
    if not 0 < seed < 128:
        raise ValueError("seed must be a non-zero 7-bit value")
    idx = (_PHASE[seed] + np.arange(n)) % _PERIOD
    return _CYCLE[idx]


def scramble(bits: np.ndarray, seed: int = 0x7F) -> np.ndarray:
    """XOR the data with the scrambler sequence (self-inverse)."""
    bits = np.asarray(bits, dtype=np.uint8)
    return bits ^ scrambler_sequence(bits.size, seed)


def descramble(bits: np.ndarray, seed: int = 0x7F) -> np.ndarray:
    """Alias of :func:`scramble`; the operation is an involution."""
    return scramble(bits, seed)
