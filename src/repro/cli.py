"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``         system summary: operating points, REPB, link budget.
``link``         simulate one end-to-end exchange and print diagnostics
                 (``--telemetry`` records and saves a pipeline trace).
``sweep``        throughput-vs-range sweep (a quick Fig. 8).
``plan``         pick battery-free operating points under a power budget.
``experiments``  regenerate every paper table/figure (run_all).
``robustness``   delivery/goodput vs injected-fault intensity, ARQ
                 on/off (the reliability-layer sweep).
``trace``        summarise a recorded telemetry run (timing table,
                 probe digest, stage-margin waterfall).
``profile``      run one exchange under cProfile and print the
                 function-level profile next to the telemetry stage
                 timing table.
``scenarios``    list/inspect the registered scenario presets
                 (``--describe NAME``, ``--dump NAME``).
``network``      discrete-event multi-tag simulation of a scenario's
                 ``network`` section (e.g. ``--scenario warehouse-10k``),
                 sharded per AP and cached like the other sweeps.
``serve``        run the streaming decode service: chunked sample
                 ingest over HTTP, many concurrent tag sessions, live
                 telemetry feed (see docs/STREAMING.md; the stdlib
                 client is ``python -m repro.streaming``).

``link``, ``sweep``, ``profile`` and ``robustness`` all accept
``--scenario NAME`` (start from a registered preset) and
``--set key=value`` (dotted-path overrides, e.g.
``--set reader.sync_search_us=4``); explicit flags sit between the
two in precedence.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BackFi (SIGCOMM 2015) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="operating points and link budget table")

    link = sub.add_parser("link", help="simulate one exchange")
    _add_scenario_flags(link)
    link.add_argument("--distance", type=float, default=None)
    link.add_argument("--modulation", default=None,
                      choices=("bpsk", "qpsk", "16psk"))
    link.add_argument("--code-rate", default=None,
                      choices=("1/2", "2/3"))
    link.add_argument("--symbol-rate", type=float, default=None)
    link.add_argument("--payload-bits", type=int, default=None)
    link.add_argument("--wifi-rate", type=int, default=None)
    link.add_argument("--seed", type=int, default=None)
    link.add_argument("--telemetry", action="store_true",
                      help="record a pipeline trace under "
                           ".repro_cache/telemetry/ and summarise it")

    sweep = sub.add_parser("sweep", help="throughput vs range")
    _add_scenario_flags(sweep)
    sweep.add_argument("--distances", type=float, nargs="+",
                       default=[0.5, 1.0, 2.0, 5.0])
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=7)

    plan = sub.add_parser("plan", help="energy planning")
    plan.add_argument("--budget-uw", type=float, default=80.0)
    plan.add_argument("--rate-bps", type=float, default=250e3)
    plan.add_argument("--distances", type=float, nargs="+",
                      default=[1.0, 2.0, 5.0])

    exp = sub.add_parser("experiments",
                         help="regenerate every paper figure")
    exp.add_argument("--fast", action="store_true")
    exp.add_argument("--plot", action="store_true")
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = all CPUs)")
    exp.add_argument("--no-cache", action="store_true",
                     help="recompute instead of reading .repro_cache/")

    rob = sub.add_parser("robustness",
                         help="ARQ delivery/goodput vs fault intensity")
    _add_scenario_flags(rob)
    rob.add_argument("--intensities", type=float, nargs="+",
                     default=[0.0, 0.3, 0.6, 0.9],
                     help="blocker trigger probabilities to sweep")
    rob.add_argument("--trials", type=int, default=3)
    rob.add_argument("--distance", type=float, default=1.0)
    rob.add_argument("--seed", type=int, default=47)
    rob.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = all CPUs)")
    rob.add_argument("--no-cache", action="store_true",
                     help="recompute instead of reading .repro_cache/")

    trace = sub.add_parser("trace",
                           help="summarise a recorded telemetry run")
    trace.add_argument("run", nargs="?", default=None,
                       help="run id or JSONL path (default: latest)")
    trace.add_argument("--dir", default=None,
                       help="telemetry directory to search "
                            "(default: .repro_cache/telemetry)")

    prof = sub.add_parser("profile",
                          help="profile one exchange (cProfile + "
                               "telemetry stage timings)")
    _add_scenario_flags(prof)
    prof.add_argument("--distance", type=float, default=None)
    prof.add_argument("--payload-bits", type=int, default=None)
    prof.add_argument("--seed", type=int, default=None)
    prof.add_argument("--top", type=int, default=15,
                      help="rows of the cProfile table to print")
    prof.add_argument("--no-fastpath", action="store_true",
                      help="profile with the DSP fast paths disabled")

    scen = sub.add_parser("scenarios",
                          help="list/inspect scenario presets")
    scen.add_argument("--list", action="store_true",
                      help="list registered presets (the default)")
    scen.add_argument("--describe", metavar="NAME", default=None,
                      help="print one preset's fields and hash")
    scen.add_argument("--dump", metavar="NAME", default=None,
                      help="print one preset as JSON (reloadable via "
                           "ScenarioConfig.from_json)")

    net = sub.add_parser("network",
                         help="discrete-event multi-tag network "
                              "simulation")
    _add_scenario_flags(net)
    net.add_argument("--polls", type=int, default=200,
                     help="total polls split across the APs")
    net.add_argument("--tags", type=int, default=None,
                     help="override the scenario's tag count")
    net.add_argument("--aps", type=int, default=None,
                     help="override the scenario's AP count")
    net.add_argument("--scheduler", default=None,
                     choices=("round_robin", "max_rate", "proportional"))
    net.add_argument("--seed", type=int, default=None,
                     help="override the scenario seed")
    net.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = all CPUs)")
    net.add_argument("--no-cache", action="store_true",
                     help="recompute instead of reading .repro_cache/")

    serve = sub.add_parser("serve",
                           help="streaming decode service "
                                "(HTTP/WebSocket, live telemetry feed)")
    _add_scenario_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default: 8735; 0 picks a free "
                            "port and prints it)")
    serve.add_argument("--max-sessions", type=int, default=None,
                       help="concurrent-session admission limit "
                            "(default: the scenario's streaming "
                            "section)")
    serve.add_argument("--chunk-samples", type=int, default=None,
                       help="advertised ingest chunk size")
    serve.add_argument("--backpressure", default=None,
                       choices=("wait", "shed"),
                       help="full-ring policy: block the producer, or "
                            "refuse the chunk with 429")
    serve.add_argument("--warm-start", action="store_true",
                       help="default new sessions to warm decoding "
                            "(carry cancellation/sync state across "
                            "exchanges)")
    serve.add_argument("--telemetry-records", type=int, default=4096,
                       help="in-memory telemetry ring size "
                            "(default: %(default)s)")
    serve.add_argument("--chaos-intensity", type=float, default=None,
                       help="scale the scenario's chaos plan (0 "
                            "disables; >0 arms the default event set "
                            "even without a scenario chaos section)")
    serve.add_argument("--chaos-seed", type=int, default=None,
                       help="override the chaos plan's seed")

    rep = sub.add_parser("report",
                         help="write a markdown reproduction report")
    rep.add_argument("-o", "--output", default="report.md")
    rep.add_argument("--fast", action="store_true")
    rep.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = all CPUs)")
    rep.add_argument("--no-cache", action="store_true",
                     help="recompute instead of reading .repro_cache/")
    return parser


def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    """``--scenario`` / ``--set`` on every scenario-driven command."""
    parser.add_argument("--scenario", metavar="NAME", default=None,
                        help="start from a registered preset "
                             "(see: repro scenarios)")
    parser.add_argument("--set", dest="overrides", action="append",
                        metavar="KEY=VALUE", default=None,
                        help="dotted-path override, e.g. "
                             "--set reader.sync_search_us=4 "
                             "(repeatable)")


_FLAG_TO_TAG = {"modulation": "modulation", "code_rate": "code_rate",
                "symbol_rate": "symbol_rate_hz"}
_FLAG_TO_LINK = {"payload_bits": "n_payload_bits",
                 "wifi_rate": "wifi_rate_mbps"}


def _scenario_from_args(args: argparse.Namespace, *,
                        map_flags: bool = True):
    """Resolve the command's flags into one :class:`ScenarioConfig`.

    Precedence, lowest to highest: the ``--scenario`` preset (or the
    stock defaults), explicit flags (``--distance``, ``--modulation``,
    ...), then ``--set`` dotted-path overrides.  Flags left at their
    ``None`` default never override the preset.  ``map_flags=False``
    skips the explicit-flag layer for commands whose ``--seed`` /
    ``--distance`` parameterise the sweep rather than the scenario.
    """
    from dataclasses import replace

    from .scenario import ScenarioConfig, get_scenario

    sc = get_scenario(args.scenario) if getattr(args, "scenario", None) \
        else ScenarioConfig()
    if map_flags:
        top: dict = {}
        if getattr(args, "distance", None) is not None:
            top["distance_m"] = float(args.distance)
        if getattr(args, "seed", None) is not None:
            top["seed"] = int(args.seed)
        tag_kw = {dst: getattr(args, src)
                  for src, dst in _FLAG_TO_TAG.items()
                  if getattr(args, src, None) is not None}
        if tag_kw:
            top["tag"] = replace(sc.tag, **tag_kw)
        link_kw = {dst: getattr(args, src)
                   for src, dst in _FLAG_TO_LINK.items()
                   if getattr(args, src, None) is not None}
        if link_kw:
            top["link"] = replace(sc.link, **link_kw)
        if top:
            sc = sc.replace(**top)
    if getattr(args, "overrides", None):
        sc = sc.with_overrides(*args.overrides)
    return sc


def _cmd_info() -> int:
    from .experiments.fig7_energy_table import run as fig7
    from .link import LinkBudget
    from .tag import TagConfig

    print(fig7().table)
    print()
    budget = LinkBudget()
    cfg = TagConfig("qpsk", "1/2", 1e6)
    print("link budget (qpsk r1/2 @1 MHz):")
    for d in (0.5, 1.0, 2.0, 5.0, 7.0):
        print(f"  {d:4.1f} m: rx {budget.backscatter_rx_dbm(d):6.1f} dBm, "
              f"post-MRC SNR {budget.symbol_snr_db(d, cfg):5.1f} dB")
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    sc = _scenario_from_args(args)
    rng = np.random.default_rng(sc.seed)
    built = sc.build(rng=rng)
    collector = None
    if args.telemetry:
        from .telemetry import TelemetryCollector

        what = (f"--scenario {sc.name}" if sc.name
                else f"--distance {sc.distance_m:g}")
        collector = TelemetryCollector(
            label=f"repro link {what} "
                  f"({sc.tag.describe()}, seed {sc.seed})")
        collector.__enter__()
    try:
        out = built.run(rng=rng)
    finally:
        if collector is not None:
            collector.__exit__(None, None, None)
    r = out.reader
    print(f"scenario        : {sc.name or '(custom)'} "
          f"[{sc.scenario_hash()}]")
    print(f"operating point : {sc.tag.describe()}")
    print(f"decoded         : {out.ok}"
          + (f" ({r.failure})" if r.failure else ""))
    print(f"delivered       : {out.delivered_bits} bits "
          f"({out.goodput_bps / 1e6:.2f} Mbps goodput)")
    print(f"post-MRC SNR    : {r.symbol_snr_db:.1f} dB")
    if r.cancellation is not None:
        c = r.cancellation
        print(f"cancellation    : {c.total_depth_db:.1f} dB total "
              f"(analog {c.analog_residual_db:.1f}, "
              f"digital {c.digital_residual_db:.1f})")
    print(f"noise floor     : {10 * np.log10(r.noise_floor_mw):.1f} dBm")
    if collector is not None:
        from .telemetry import load_run, summarize

        print()
        print(summarize(load_run(collector.path)))
        print(f"\ntrace saved to {collector.path} "
              f"(re-render with: python -m repro.cli trace "
              f"{collector.run_id})")
    return 0 if out.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """One exchange under cProfile, merged with the telemetry trace.

    The function-level profile says *where the interpreter spent its
    time*; the telemetry stage table says *which pipeline stage* -- the
    two views together are what the perf work in docs/PERFORMANCE.md is
    navigated with.
    """
    import cProfile
    import io
    import pstats

    from .dsp.fastpath import set_fastpath_enabled
    from .telemetry import TelemetryCollector, load_run
    from .telemetry.trace import stage_timing_table

    sc = _scenario_from_args(args)
    # Warm-up exchange: triggers the pipeline's lazy imports and cache
    # setup so the profiled run measures steady-state decode cost.
    warm_rng = np.random.default_rng(sc.seed)
    sc.build(rng=warm_rng).run(rng=warm_rng)

    rng = np.random.default_rng(sc.seed)
    built = sc.build(rng=rng)
    previous = set_fastpath_enabled(not args.no_fastpath)
    profiler = cProfile.Profile()
    try:
        with TelemetryCollector(
                label=f"repro profile (seed {sc.seed})") as collector:
            profiler.enable()
            out = built.run(rng=rng)
            profiler.disable()
    finally:
        set_fastpath_enabled(previous)

    from contextlib import nullcontext

    from .dsp.backends import backend_summary, use_backend

    # Report the resolution the profiled run actually saw (a scenario
    # backend pin applies inside BuiltScenario.run's context).
    with use_backend(sc.backend) if sc.backend is not None \
            else nullcontext():
        summary = backend_summary()
    fastpath = "off" if args.no_fastpath else "on"
    print(f"profiled one exchange (fast path {fastpath}, "
          f"decoded: {out.ok})")
    print(f"kernel backends: {summary}\n")
    print("pipeline stages (telemetry):")
    print(stage_timing_table(load_run(collector.path)))
    print(f"\ntop {args.top} functions by cumulative time (cProfile):")
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(args.top)
    # Drop the pstats banner lines; keep the table.
    lines = buf.getvalue().splitlines()
    table_from = next(i for i, ln in enumerate(lines) if "ncalls" in ln)
    print("\n".join(lines[table_from:]).rstrip())
    print(f"\ntrace saved to {collector.path}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .experiments.engine import ExperimentEngine, use_engine
    from .experiments.robustness_sweep import run as robustness_run

    engine = ExperimentEngine(jobs=args.jobs, cache=not args.no_cache)
    params = {
        "intensities": tuple(args.intensities),
        "trials": args.trials,
        "distance_m": args.distance,
        "seed": args.seed,
    }
    if args.scenario or args.overrides:
        # The scenario baseline participates in the cache key via its
        # scenario_hash, so preset/override runs never collide with the
        # stock sweep.
        params["scenario"] = _scenario_from_args(args, map_flags=False)
    with engine, use_engine(engine):
        result = engine.run("robustness_sweep", robustness_run, params)
        print(result.table)
        print(engine.records[-1].describe(), file=sys.stderr)
        for failure in engine.trial_failures:
            print(f"WARNING: {failure}", file=sys.stderr)
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .experiments.engine import ExperimentEngine, use_engine
    from .experiments.network_sim import run as network_run
    from .link.simulator import NetworkConfig

    sc = _scenario_from_args(args, map_flags=False)
    network = sc.network or NetworkConfig()
    over = {}
    if args.tags is not None:
        over["n_tags"] = args.tags
    if args.aps is not None:
        over["n_aps"] = args.aps
    if args.scheduler is not None:
        over["scheduler"] = args.scheduler
    if over:
        network = replace(network, **over)
    sc = sc.replace(network=network)

    engine = ExperimentEngine(jobs=args.jobs, cache=not args.no_cache)
    # jobs stays out of the cache key: results are byte-identical at
    # any worker count, so every jobs value shares one cache entry.
    params: dict = {"scenario": sc, "polls": args.polls}
    if args.seed is not None:
        params["seed"] = args.seed
    with engine, use_engine(engine):
        result = engine.run("network_sim", network_run, params)
        print(result.table)
        print(engine.records[-1].describe(), file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry import load_run, resolve_run_path, summarize

    try:
        path = resolve_run_path(args.run, args.dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(summarize(load_run(path)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.fig8_throughput_range import run as fig8

    scenario = None
    if args.scenario or args.overrides:
        scenario = _scenario_from_args(args, map_flags=False)
    result = fig8(distances_m=tuple(args.distances),
                  preambles_us=(32.0,), trials=args.trials,
                  seed=args.seed, scenario=scenario)
    print(result.table)
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenario import get_scenario, list_scenarios

    name = args.dump or args.describe
    if name:
        try:
            sc = get_scenario(name)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        if args.dump:
            print(sc.to_json())
            return 0
        print(f"name        : {sc.name}")
        print(f"description : {sc.description}")
        print(f"hash        : {sc.scenario_hash()}")
        print(f"tag         : {sc.tag.describe()}")
        print(f"distance    : {sc.distance_m:g} m (client "
              f"{sc.client_distance_m:g} m @ "
              f"{sc.client_angle_deg:g} deg)")
        print(f"link        : {sc.link.excitation} excitation @ "
              f"{sc.link.wifi_rate_mbps} Mbps, "
              f"{sc.link.wifi_payload_bytes} B packets, "
              f"{sc.link.n_payload_bits} payload bits")
        print(f"reader      : {sc.reader.n_channel_taps} taps, "
              f"sync +/-{sc.reader.sync_search_us:g} us, "
              f"tracking {'on' if sc.reader.track_phase else 'off'}")
        print(f"arq         : "
              f"{'configured' if sc.arq is not None else 'none'}")
        n_faults = len(sc.faults.events) if sc.faults is not None else 0
        print(f"faults      : {n_faults} event(s)")
        return 0
    width = max((len(n) for n in list_scenarios()), default=0)
    for preset in list_scenarios():
        sc = get_scenario(preset)
        print(f"{preset:<{width}}  {sc.scenario_hash()}  "
              f"{sc.description}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming decode service until POST /shutdown (or ^C)."""
    import asyncio
    import contextlib
    import signal
    from dataclasses import replace

    from .faults import ChaosConfig
    from .scenario import StreamingConfig, get_scenario
    from .streaming import DEFAULT_PORT, SessionMultiplexer, \
        StreamingServer
    from .telemetry import TelemetryCollector

    scenario_name = args.scenario or "streaming-50"
    sc = get_scenario(scenario_name)
    if args.overrides:
        sc = sc.with_overrides(*args.overrides)
    cfg = sc.streaming or StreamingConfig()
    flag_over = {
        name: getattr(args, name)
        for name in ("max_sessions", "chunk_samples", "backpressure")
        if getattr(args, name) is not None
    }
    if args.warm_start:
        flag_over["warm_start"] = True
    if flag_over:
        cfg = replace(cfg, **flag_over)

    # Chaos: the scenario's section, optionally rescaled/reseeded (or
    # created) by the flags.  --chaos-intensity 0 always disables.
    chaos_cfg = sc.chaos
    if args.chaos_intensity is not None or args.chaos_seed is not None:
        base = chaos_cfg or ChaosConfig(intensity=0.0)
        chaos_cfg = replace(
            base,
            intensity=base.intensity if args.chaos_intensity is None
            else args.chaos_intensity,
            seed=base.seed if args.chaos_seed is None
            else args.chaos_seed,
        )
    chaos_plan = chaos_cfg.plan() if chaos_cfg is not None else None

    async def _serve() -> int:
        collector = TelemetryCollector(
            label=f"repro serve --scenario {scenario_name}",
            max_records=args.telemetry_records)
        server = StreamingServer(
            SessionMultiplexer(cfg, chaos=chaos_plan),
            host=args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            default_scenario=scenario_name,
            collector=collector,
        )
        await server.start()
        # SIGTERM/SIGINT begin a graceful drain (stop admissions, let
        # in-flight exchanges finish); a second signal stops at once.
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, server.request_drain)
        print(f"streaming decode service on "
              f"http://{server.host}:{server.port}", flush=True)
        print(f"  default scenario : {scenario_name} "
              f"[{sc.scenario_hash()}]", flush=True)
        print(f"  sessions         : up to {cfg.max_sessions} "
              f"({cfg.backpressure} backpressure, "
              f"{cfg.chunk_samples}-sample chunks)", flush=True)
        if cfg.watchdog_deadline_s is not None:
            print(f"  watchdog         : reap stalled sessions after "
                  f"{cfg.watchdog_deadline_s:g}s", flush=True)
        if chaos_plan is not None:
            print(f"  chaos            : ARMED "
                  f"({len(chaos_plan.events)} event types, seed "
                  f"{chaos_plan.seed}) -- injecting transport faults",
                  flush=True)
        print("  stop with        : POST /shutdown, SIGTERM drain, "
              "or ^C", flush=True)
        try:
            await server.serve_until_shutdown()
        except (KeyboardInterrupt, asyncio.CancelledError):
            await server.aclose()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(NotImplementedError,
                                         ValueError):
                    loop.remove_signal_handler(sig)
        print(f"telemetry saved to {collector.path}", flush=True)
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .link import LinkBudget
    from .reader import select_config
    from .tag import default_energy_model

    budget = LinkBudget()
    model = default_energy_model()
    print(f"budget {args.budget_uw:.0f} uW, "
          f"target {args.rate_bps / 1e3:.0f} kbps")
    for d in args.distances:
        choice = select_config(
            lambda cfg: budget.symbol_snr_db(d, cfg),
            min_throughput_bps=args.rate_bps,
        )
        if choice is None:
            print(f"  {d:4.1f} m: infeasible")
            continue
        duty = args.rate_bps / choice.config.throughput_bps
        avg_uw = model.epb_pj(choice.config) \
            * choice.config.throughput_bps * duty * 1e-6
        verdict = "OK" if avg_uw <= args.budget_uw else "over budget"
        print(f"  {d:4.1f} m: {choice.config.describe()} "
              f"(REPB {choice.repb:.3f}, {avg_uw:.3f} uW avg) {verdict}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "link":
        return _cmd_link(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "network":
        return _cmd_network(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "experiments":
        from .experiments.run_all import main as run_all_main

        extra = ["--jobs", str(args.jobs)]
        if args.fast:
            extra.append("--fast")
        if args.plot:
            extra.append("--plot")
        if args.no_cache:
            extra.append("--no-cache")
        return run_all_main(extra)
    if args.command == "report":
        from .experiments.report import main as report_main

        extra = ["-o", args.output, "--jobs", str(args.jobs)]
        if args.fast:
            extra.append("--fast")
        if args.no_cache:
            extra.append("--no-cache")
        return report_main(extra)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
