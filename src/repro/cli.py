"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``         system summary: operating points, REPB, link budget.
``link``         simulate one end-to-end exchange and print diagnostics
                 (``--telemetry`` records and saves a pipeline trace).
``sweep``        throughput-vs-range sweep (a quick Fig. 8).
``plan``         pick battery-free operating points under a power budget.
``experiments``  regenerate every paper table/figure (run_all).
``robustness``   delivery/goodput vs injected-fault intensity, ARQ
                 on/off (the reliability-layer sweep).
``trace``        summarise a recorded telemetry run (timing table,
                 probe digest, stage-margin waterfall).
``profile``      run one exchange under cProfile and print the
                 function-level profile next to the telemetry stage
                 timing table.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BackFi (SIGCOMM 2015) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="operating points and link budget table")

    link = sub.add_parser("link", help="simulate one exchange")
    link.add_argument("--distance", type=float, default=1.0)
    link.add_argument("--modulation", default="qpsk",
                      choices=("bpsk", "qpsk", "16psk"))
    link.add_argument("--code-rate", default="1/2",
                      choices=("1/2", "2/3"))
    link.add_argument("--symbol-rate", type=float, default=1e6)
    link.add_argument("--payload-bits", type=int, default=1000)
    link.add_argument("--wifi-rate", type=int, default=24)
    link.add_argument("--seed", type=int, default=0)
    link.add_argument("--telemetry", action="store_true",
                      help="record a pipeline trace under "
                           ".repro_cache/telemetry/ and summarise it")

    sweep = sub.add_parser("sweep", help="throughput vs range")
    sweep.add_argument("--distances", type=float, nargs="+",
                       default=[0.5, 1.0, 2.0, 5.0])
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=7)

    plan = sub.add_parser("plan", help="energy planning")
    plan.add_argument("--budget-uw", type=float, default=80.0)
    plan.add_argument("--rate-bps", type=float, default=250e3)
    plan.add_argument("--distances", type=float, nargs="+",
                      default=[1.0, 2.0, 5.0])

    exp = sub.add_parser("experiments",
                         help="regenerate every paper figure")
    exp.add_argument("--fast", action="store_true")
    exp.add_argument("--plot", action="store_true")
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = all CPUs)")
    exp.add_argument("--no-cache", action="store_true",
                     help="recompute instead of reading .repro_cache/")

    rob = sub.add_parser("robustness",
                         help="ARQ delivery/goodput vs fault intensity")
    rob.add_argument("--intensities", type=float, nargs="+",
                     default=[0.0, 0.3, 0.6, 0.9],
                     help="blocker trigger probabilities to sweep")
    rob.add_argument("--trials", type=int, default=3)
    rob.add_argument("--distance", type=float, default=1.0)
    rob.add_argument("--seed", type=int, default=47)
    rob.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = all CPUs)")
    rob.add_argument("--no-cache", action="store_true",
                     help="recompute instead of reading .repro_cache/")

    trace = sub.add_parser("trace",
                           help="summarise a recorded telemetry run")
    trace.add_argument("run", nargs="?", default=None,
                       help="run id or JSONL path (default: latest)")
    trace.add_argument("--dir", default=None,
                       help="telemetry directory to search "
                            "(default: .repro_cache/telemetry)")

    prof = sub.add_parser("profile",
                          help="profile one exchange (cProfile + "
                               "telemetry stage timings)")
    prof.add_argument("--distance", type=float, default=1.0)
    prof.add_argument("--payload-bits", type=int, default=1000)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--top", type=int, default=15,
                      help="rows of the cProfile table to print")
    prof.add_argument("--no-fastpath", action="store_true",
                      help="profile with the DSP fast paths disabled")

    rep = sub.add_parser("report",
                         help="write a markdown reproduction report")
    rep.add_argument("-o", "--output", default="report.md")
    rep.add_argument("--fast", action="store_true")
    rep.add_argument("--jobs", type=int, default=1,
                     help="worker processes (0 = all CPUs)")
    rep.add_argument("--no-cache", action="store_true",
                     help="recompute instead of reading .repro_cache/")
    return parser


def _cmd_info() -> int:
    from .experiments.fig7_energy_table import run as fig7
    from .link import LinkBudget
    from .tag import TagConfig

    print(fig7().table)
    print()
    budget = LinkBudget()
    cfg = TagConfig("qpsk", "1/2", 1e6)
    print("link budget (qpsk r1/2 @1 MHz):")
    for d in (0.5, 1.0, 2.0, 5.0, 7.0):
        print(f"  {d:4.1f} m: rx {budget.backscatter_rx_dbm(d):6.1f} dBm, "
              f"post-MRC SNR {budget.symbol_snr_db(d, cfg):5.1f} dB")
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    from .channel import Scene
    from .link import run_backscatter_session
    from .reader import BackFiReader
    from .tag import BackFiTag, TagConfig

    rng = np.random.default_rng(args.seed)
    cfg = TagConfig(args.modulation, args.code_rate, args.symbol_rate)
    scene = Scene.build(tag_distance_m=args.distance, rng=rng)
    collector = None
    if args.telemetry:
        from .telemetry import TelemetryCollector

        collector = TelemetryCollector(
            label=f"repro link --distance {args.distance} "
                  f"({cfg.describe()}, seed {args.seed})")
        collector.__enter__()
    try:
        out = run_backscatter_session(
            scene, BackFiTag(cfg), BackFiReader(cfg),
            n_payload_bits=args.payload_bits,
            wifi_rate_mbps=args.wifi_rate, rng=rng,
        )
    finally:
        if collector is not None:
            collector.__exit__(None, None, None)
    r = out.reader
    print(f"operating point : {cfg.describe()}")
    print(f"decoded         : {out.ok}"
          + (f" ({r.failure})" if r.failure else ""))
    print(f"delivered       : {out.delivered_bits} bits "
          f"({out.goodput_bps / 1e6:.2f} Mbps goodput)")
    print(f"post-MRC SNR    : {r.symbol_snr_db:.1f} dB")
    if r.cancellation is not None:
        c = r.cancellation
        print(f"cancellation    : {c.total_depth_db:.1f} dB total "
              f"(analog {c.analog_residual_db:.1f}, "
              f"digital {c.digital_residual_db:.1f})")
    print(f"noise floor     : {10 * np.log10(r.noise_floor_mw):.1f} dBm")
    if collector is not None:
        from .telemetry import load_run, summarize

        print()
        print(summarize(load_run(collector.path)))
        print(f"\ntrace saved to {collector.path} "
              f"(re-render with: python -m repro.cli trace "
              f"{collector.run_id})")
    return 0 if out.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """One exchange under cProfile, merged with the telemetry trace.

    The function-level profile says *where the interpreter spent its
    time*; the telemetry stage table says *which pipeline stage* -- the
    two views together are what the perf work in docs/PERFORMANCE.md is
    navigated with.
    """
    import cProfile
    import io
    import pstats

    from .channel import Scene
    from .dsp.fastpath import set_fastpath_enabled
    from .link import run_backscatter_session
    from .reader import BackFiReader
    from .tag import BackFiTag, TagConfig
    from .telemetry import TelemetryCollector, load_run
    from .telemetry.trace import stage_timing_table

    cfg = TagConfig("qpsk", "1/2", 1e6)
    # Warm-up exchange: triggers the pipeline's lazy imports and cache
    # setup so the profiled run measures steady-state decode cost.
    warm_rng = np.random.default_rng(args.seed)
    run_backscatter_session(
        Scene.build(tag_distance_m=args.distance, rng=warm_rng),
        BackFiTag(cfg), BackFiReader(cfg),
        n_payload_bits=args.payload_bits, rng=warm_rng,
    )

    rng = np.random.default_rng(args.seed)
    scene = Scene.build(tag_distance_m=args.distance, rng=rng)
    previous = set_fastpath_enabled(not args.no_fastpath)
    profiler = cProfile.Profile()
    try:
        with TelemetryCollector(
                label=f"repro profile (seed {args.seed})") as collector:
            profiler.enable()
            out = run_backscatter_session(
                scene, BackFiTag(cfg), BackFiReader(cfg),
                n_payload_bits=args.payload_bits, rng=rng,
            )
            profiler.disable()
    finally:
        set_fastpath_enabled(previous)

    fastpath = "off" if args.no_fastpath else "on"
    print(f"profiled one exchange (fast path {fastpath}, "
          f"decoded: {out.ok})\n")
    print("pipeline stages (telemetry):")
    print(stage_timing_table(load_run(collector.path)))
    print(f"\ntop {args.top} functions by cumulative time (cProfile):")
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(args.top)
    # Drop the pstats banner lines; keep the table.
    lines = buf.getvalue().splitlines()
    table_from = next(i for i, ln in enumerate(lines) if "ncalls" in ln)
    print("\n".join(lines[table_from:]).rstrip())
    print(f"\ntrace saved to {collector.path}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .experiments.engine import ExperimentEngine, use_engine
    from .experiments.robustness_sweep import run as robustness_run

    engine = ExperimentEngine(jobs=args.jobs, cache=not args.no_cache)
    params = {
        "intensities": tuple(args.intensities),
        "trials": args.trials,
        "distance_m": args.distance,
        "seed": args.seed,
    }
    with engine, use_engine(engine):
        result = engine.run("robustness_sweep", robustness_run, params)
        print(result.table)
        print(engine.records[-1].describe(), file=sys.stderr)
        for failure in engine.trial_failures:
            print(f"WARNING: {failure}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry import load_run, resolve_run_path, summarize

    try:
        path = resolve_run_path(args.run, args.dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(summarize(load_run(path)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.fig8_throughput_range import run as fig8

    result = fig8(distances_m=tuple(args.distances),
                  preambles_us=(32.0,), trials=args.trials,
                  seed=args.seed)
    print(result.table)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .link import LinkBudget
    from .reader import select_config
    from .tag import default_energy_model

    budget = LinkBudget()
    model = default_energy_model()
    print(f"budget {args.budget_uw:.0f} uW, "
          f"target {args.rate_bps / 1e3:.0f} kbps")
    for d in args.distances:
        choice = select_config(
            lambda cfg: budget.symbol_snr_db(d, cfg),
            min_throughput_bps=args.rate_bps,
        )
        if choice is None:
            print(f"  {d:4.1f} m: infeasible")
            continue
        duty = args.rate_bps / choice.config.throughput_bps
        avg_uw = model.epb_pj(choice.config) \
            * choice.config.throughput_bps * duty * 1e-6
        verdict = "OK" if avg_uw <= args.budget_uw else "over budget"
        print(f"  {d:4.1f} m: {choice.config.describe()} "
              f"(REPB {choice.repb:.3f}, {avg_uw:.3f} uW avg) {verdict}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "link":
        return _cmd_link(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "experiments":
        from .experiments.run_all import main as run_all_main

        extra = ["--jobs", str(args.jobs)]
        if args.fast:
            extra.append("--fast")
        if args.plot:
            extra.append("--plot")
        if args.no_cache:
            extra.append("--no-cache")
        return run_all_main(extra)
    if args.command == "report":
        from .experiments.report import main as report_main

        extra = ["-o", args.output, "--jobs", str(args.jobs)]
        if args.fast:
            extra.append("--fast")
        if args.no_cache:
            extra.append("--no-cache")
        return report_main(extra)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
