"""Serializable configuration of the BackFi reader pipeline.

:class:`ReaderConfig` captures every knob of
:class:`repro.reader.reader.BackFiReader` that is plain data -- the
constructor keeps its keyword API for callers, but the canonical source
of defaults lives here so a reader setup can be stored, hashed and
rebuilt by the scenario layer (:mod:`repro.scenario`).

The canceller is deliberately *not* part of this config: it is a
stateful object (ablations swap in partially-disabled ones), so the
scenario layer passes it separately when an experiment needs to.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReaderConfig"]


@dataclass(frozen=True)
class ReaderConfig:
    """The plain-data knobs of the reader receive pipeline."""

    n_channel_taps: int = 12
    """Taps of the combined forward-backward channel estimate."""

    sync_search_us: float = 2.0
    """Half-width of the tag timing search window around the nominal
    preamble start."""

    preamble_seed: int = 0x35
    """Seed of the tag's PN synchronisation preamble (must match the
    tag's)."""

    track_phase: bool = False
    """Enable decision-directed gain tracking across the payload
    (see :mod:`repro.reader.tracking`)."""

    recovery: bool = True
    """Escalate on recoverable failures: a sync failure retries with a
    widened search window, a residual-floor/saturation failure re-runs
    cancellation at doubled digital depth."""

    sync_widen_factor: float = 3.0
    """Search-window multiplier applied by the sync recovery escalation."""

    def __post_init__(self) -> None:
        if self.n_channel_taps < 1:
            raise ValueError("n_channel_taps must be >= 1")
        if self.sync_search_us <= 0:
            raise ValueError("sync_search_us must be positive")
        if self.sync_widen_factor < 1.0:
            raise ValueError("sync_widen_factor must be >= 1")
