"""Typed failure taxonomy for the reader pipeline.

The reader used to report failures as free-form strings, which made
recovery policies (and telemetry aggregation) impossible to write
robustly.  Every decode failure is now a :class:`ReaderFailure` with a
:class:`FailureKind` that maps 1:1 onto a recovery action:

==================  ===============================================
kind                recovery escalation
==================  ===============================================
``SYNC``            retry timing search with a widened window
``RESIDUAL_FLOOR``  re-run cancellation at higher digital depth
``SATURATION``      re-run cancellation at higher digital depth
``CRC``             none at the reader -- the link layer retransmits
``NO_CAPACITY``     none -- the excitation packet is too short
==================  ===============================================

``str(failure)`` keeps the old human-readable form, so log lines and
diagnostics that interpolate the failure keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["FailureKind", "ReaderFailure"]


class FailureKind(Enum):
    """Where in the pipeline (and why) a decode failed."""

    SYNC = "sync"
    """Timing recovery found no plausible preamble offset."""

    NO_CAPACITY = "no-capacity"
    """The excitation packet has no room for payload symbols."""

    CRC = "crc"
    """Symbols decoded but the frame CRC failed (plain SNR shortfall)."""

    RESIDUAL_FLOOR = "residual-floor"
    """CRC failed with a noise floor well above thermal: the
    self-interference canceller left too much residue."""

    SATURATION = "adc-saturation"
    """CRC failed with the ADC driven past full scale."""


#: Kinds the reader can escalate on (vs. kinds only the link layer can
#: recover from, by retransmitting or falling back in rate).
RECOVERABLE_KINDS = frozenset({
    FailureKind.SYNC,
    FailureKind.RESIDUAL_FLOOR,
    FailureKind.SATURATION,
})


@dataclass(frozen=True)
class ReaderFailure:
    """One classified decode failure."""

    kind: FailureKind
    detail: str = ""

    def __str__(self) -> str:
        if self.detail:
            return f"{self.kind.value}: {self.detail}"
        return self.kind.value

    @property
    def recoverable(self) -> bool:
        """Whether the reader itself has an escalation for this kind."""
        return self.kind in RECOVERABLE_KINDS
