"""Fine timing recovery for the tag's backscatter (paper Sec. 4.1).

The reader controls the protocol timeline, so it knows *nominally* when
the tag's silent period, preamble and data start.  The tag's wake-up
detector, however, fires with a small uncertainty (up to a microsecond of
comparator/decision latency).  The reader therefore searches a window of
candidate offsets and picks the one whose LS channel fit to the known
preamble leaves the smallest residual -- equivalent to correlating with
the PN preamble, but reusing the estimator we already have.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import SAMPLES_PER_US
from ..telemetry import get_collector
from .channel_est import (
    ChannelEstimate,
    estimate_combined_channel,
    preamble_condition_number,
)

__all__ = ["SyncResult", "find_tag_timing"]


@dataclass(frozen=True)
class SyncResult:
    """Outcome of the fine timing search."""

    preamble_start: int
    offset_samples: int
    estimate: ChannelEstimate
    metric: float


def find_tag_timing(
    x: np.ndarray,
    y_clean: np.ndarray,
    nominal_preamble_start: int,
    preamble_us: float,
    *,
    search_us: float = 2.0,
    step_samples: int = 4,
    n_taps: int = 8,
    preamble_seed: int = 0x35,
) -> SyncResult:
    """Search +-``search_us`` around the nominal preamble start.

    The metric is the normalised LS residual: sharper (smaller) when the
    assumed chip boundaries line up with the tag's actual switching
    instants.  A final pass refines to single-sample resolution.
    """
    search = int(search_us * SAMPLES_PER_US)
    if step_samples < 1:
        raise ValueError("step must be >= 1")
    tm = get_collector()
    n_evaluated = 0

    def metric_at(start: int) -> tuple[float, ChannelEstimate] | None:
        nonlocal n_evaluated
        n_evaluated += 1
        if start < 0:
            return None
        try:
            est = estimate_combined_channel(
                x, y_clean, start, preamble_us,
                n_taps=n_taps, preamble_seed=preamble_seed,
            )
        except ValueError:
            return None
        gain = est.gain
        if gain <= 0:
            return None
        # A gentle prior toward the nominal timing: for wideband
        # excitations the residual contrast is orders of magnitude, so
        # this never changes the answer; for narrowband excitations
        # (BLE/Zigbee) whose autocorrelation makes the metric nearly
        # flat, it pins the flat region to the protocol timeline.
        off = abs(start - nominal_preamble_start)
        penalty = 1.0 + 0.005 * off
        return est.residual_power / gain * penalty, est

    with tm.span("sync") as sp:
        best: tuple[float, int, ChannelEstimate] | None = None
        for off in range(-search, search + 1, step_samples):
            out = metric_at(nominal_preamble_start + off)
            if out is None:
                continue
            m, est = out
            if best is None or m < best[0]:
                best = (m, off, est)
        if best is None:
            sp.probe("candidates", n_evaluated)
            raise ValueError("no feasible timing offset found")

        # Refine around the coarse winner at single-sample resolution.
        coarse_off = best[1]
        for off in range(coarse_off - step_samples + 1,
                         coarse_off + step_samples):
            if off == coarse_off:
                continue
            out = metric_at(nominal_preamble_start + off)
            if out is None:
                continue
            m, est = out
            if m < best[0]:
                best = (m, off, est)

        # The LS fit is invariant to starting up to n_taps-1 samples
        # early (the shift is absorbed as leading delay taps), so the
        # metric is flat on the early side and cliffs on the late side.
        # Walk forward to the latest offset that still fits -- the true
        # chip boundary.  The late-side cliff is orders of magnitude, so
        # this factor cannot overshoot the boundary for wideband
        # excitations; the timing prior bounds the walk for narrowband
        # ones.
        tol = 1.5 * best[0] + 1e-30
        for _ in range(n_taps + step_samples):
            out = metric_at(nominal_preamble_start + best[1] + 1)
            if out is None or out[0] > tol:
                break
            best = (out[0], best[1] + 1, out[1])

        m, off, est = best
        sp.probe("offset_samples", off)
        sp.probe("metric", m)
        sp.probe("candidates", n_evaluated)
        sp.probe("search_samples", 2 * search + 1)

    # Report the winning estimate's quality as its own stage: in the
    # pipeline story channel estimation is a distinct step even though
    # the search above computes it as a by-product.
    with tm.span("channel_est") as sp:
        sp.probe("gain_db", 10.0 * np.log10(max(est.gain, 1e-30)))
        sp.probe("residual_power", est.residual_power)
        sp.probe("snr_estimate_db", est.snr_estimate_db())
        sp.probe("n_rows", est.n_rows)
        sp.probe("n_taps", int(est.h_fb.size))
        if tm.enabled:
            # An extra SVD -- only worth it when someone is listening.
            sp.probe("condition_number", preamble_condition_number(
                x, nominal_preamble_start + off, preamble_us,
                n_taps=n_taps,
            ))

    return SyncResult(
        preamble_start=nominal_preamble_start + off,
        offset_samples=off,
        estimate=est,
        metric=m,
    )
