"""Fine timing recovery for the tag's backscatter (paper Sec. 4.1).

The reader controls the protocol timeline, so it knows *nominally* when
the tag's silent period, preamble and data start.  The tag's wake-up
detector, however, fires with a small uncertainty (up to a microsecond of
comparator/decision latency).  The reader therefore searches a window of
candidate offsets and picks the one whose LS channel fit to the known
preamble leaves the smallest residual -- equivalent to correlating with
the PN preamble, but reusing the estimator we already have.

Two implementations of the search share identical selection logic:

* the **fast path** (default) scores every candidate offset through
  :class:`~repro.reader.fastpath.PreambleSolver` -- correlation tables
  computed once, then one batched normal-equation solve per sweep --
  and runs the full SVD estimator exactly once, at the winning offset;
* the **direct path** (``fast=False``, or ``REPRO_FASTPATH=0``) runs
  :func:`estimate_combined_channel` at every candidate, as the original
  pipeline did.  It is kept as the reference for the equivalence suite
  and for the perf benchmarks.

Both paths return the same winning offset on the tier-1 scenarios
(asserted by ``tests/test_fastpath.py``), and the returned
:class:`ChannelEstimate` always comes from the reference estimator, so
everything downstream of sync is bit-identical between the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import SAMPLES_PER_US
from ..dsp.fastpath import fastpath_enabled
from ..telemetry import get_collector
from .channel_est import (
    ChannelEstimate,
    estimate_combined_channel,
    preamble_condition_number,
)
from .fastpath import PreambleSolver

__all__ = ["SyncResult", "find_tag_timing", "replay_offset_selection"]


@dataclass(frozen=True)
class SyncResult:
    """Outcome of the fine timing search."""

    preamble_start: int
    offset_samples: int
    estimate: ChannelEstimate
    metric: float


def find_tag_timing(
    x: np.ndarray,
    y_clean: np.ndarray,
    nominal_preamble_start: int,
    preamble_us: float,
    *,
    search_us: float = 2.0,
    step_samples: int = 4,
    n_taps: int = 8,
    preamble_seed: int = 0x35,
    fast: bool | None = None,
) -> SyncResult:
    """Search +-``search_us`` around the nominal preamble start.

    The metric is the normalised LS residual: sharper (smaller) when the
    assumed chip boundaries line up with the tag's actual switching
    instants.  A final pass refines to single-sample resolution.

    ``fast=None`` follows the global switch
    (:func:`repro.dsp.fastpath.fastpath_enabled`); ``True``/``False``
    force the batched normal-equation sweep or the per-offset SVD
    reference respectively.
    """
    search = int(search_us * SAMPLES_PER_US)
    if step_samples < 1:
        raise ValueError("step must be >= 1")
    if fast is None:
        fast = fastpath_enabled()
    tm = get_collector()
    n_evaluated = 0

    def penalty(start: int) -> float:
        # A gentle prior toward the nominal timing: for wideband
        # excitations the residual contrast is orders of magnitude, so
        # this never changes the answer; for narrowband excitations
        # (BLE/Zigbee) whose autocorrelation makes the metric nearly
        # flat, it pins the flat region to the protocol timeline.
        off = abs(start - nominal_preamble_start)
        return 1.0 + 0.005 * off

    if fast:
        # Every candidate the coarse sweep, refinement and boundary walk
        # can visit lies inside this window; the solver only builds its
        # correlation tables over the samples the window can touch.
        window = (nominal_preamble_start - search - step_samples,
                  nominal_preamble_start + search + n_taps
                  + 2 * step_samples)
        solver = PreambleSolver(x, y_clean, preamble_us,
                                n_taps=n_taps, preamble_seed=preamble_seed,
                                start_window=window)

        def metric_batch(offsets: list[int]) -> list[float | None]:
            """Fast metric (or None = infeasible) per candidate offset."""
            nonlocal n_evaluated
            n_evaluated += len(offsets)
            starts = nominal_preamble_start + np.asarray(offsets)
            feasible, residual_power, gain = solver.evaluate(starts)
            return [
                float(residual_power[i] / gain[i]
                      * penalty(int(starts[i]))) if feasible[i] else None
                for i in range(len(offsets))
            ]
    else:
        estimates: dict[int, ChannelEstimate] = {}

        def metric_one(start: int) -> float | None:
            nonlocal n_evaluated
            n_evaluated += 1
            if start < 0:
                return None
            try:
                est = estimate_combined_channel(
                    x, y_clean, start, preamble_us,
                    n_taps=n_taps, preamble_seed=preamble_seed,
                )
            except ValueError:
                return None
            if est.gain <= 0:
                return None
            estimates[start] = est
            return est.residual_power / est.gain * penalty(start)

        def metric_batch(offsets: list[int]) -> list[float | None]:
            return [metric_one(nominal_preamble_start + off)
                    for off in offsets]

    with tm.span("sync") as sp:
        # Coarse sweep at step_samples resolution.
        coarse_offs = list(range(-search, search + 1, step_samples))
        best: tuple[float, int] | None = None
        for off, m in zip(coarse_offs, metric_batch(coarse_offs)):
            if m is None:
                continue
            if best is None or m < best[0]:
                best = (m, off)
        if best is None:
            sp.probe("candidates", n_evaluated)
            raise ValueError("no feasible timing offset found")

        # Refine around the coarse winner at single-sample resolution.
        coarse_off = best[1]
        refine_offs = [off for off in range(coarse_off - step_samples + 1,
                                            coarse_off + step_samples)
                       if off != coarse_off]
        for off, m in zip(refine_offs, metric_batch(refine_offs)):
            if m is not None and m < best[0]:
                best = (m, off)

        # The LS fit is invariant to starting up to n_taps-1 samples
        # early (the shift is absorbed as leading delay taps), so the
        # metric is flat on the early side and cliffs on the late side.
        # Walk forward to the latest offset that still fits -- the true
        # chip boundary.  The late-side cliff is orders of magnitude, so
        # this factor cannot overshoot the boundary for wideband
        # excitations; the timing prior bounds the walk for narrowband
        # ones.
        tol = 1.5 * best[0] + 1e-30
        walk_offs = [best[1] + 1 + i for i in range(n_taps + step_samples)]
        for off, m in zip(walk_offs, metric_batch(walk_offs)):
            if m is None or m > tol:
                break
            best = (m, off)

        m, off = best
        start = nominal_preamble_start + off
        if fast:
            # One reference-estimator run at the winner, so the returned
            # estimate (and everything downstream) is identical to the
            # direct path's.
            est = estimate_combined_channel(
                x, y_clean, start, preamble_us,
                n_taps=n_taps, preamble_seed=preamble_seed,
            )
            m = est.residual_power / max(est.gain, 1e-300) * penalty(start)
        else:
            est = estimates[start]
        sp.probe("offset_samples", off)
        sp.probe("metric", m)
        sp.probe("candidates", n_evaluated)
        sp.probe("search_samples", 2 * search + 1)
        sp.probe("fast_path", fast)

    # Report the winning estimate's quality as its own stage: in the
    # pipeline story channel estimation is a distinct step even though
    # the search above computes it as a by-product.
    with tm.span("channel_est") as sp:
        sp.probe("gain_db", 10.0 * np.log10(max(est.gain, 1e-30)))
        sp.probe("residual_power", est.residual_power)
        sp.probe("snr_estimate_db", est.snr_estimate_db())
        sp.probe("n_rows", est.n_rows)
        sp.probe("n_taps", int(est.h_fb.size))
        if tm.enabled:
            # An extra SVD -- only worth it when someone is listening.
            sp.probe("condition_number", preamble_condition_number(
                x, nominal_preamble_start + off, preamble_us,
                n_taps=n_taps,
            ))

    return SyncResult(
        preamble_start=nominal_preamble_start + off,
        offset_samples=off,
        estimate=est,
        metric=m,
    )


def replay_offset_selection(feasible: np.ndarray, metric: np.ndarray,
                            grid0: int, search: int, step: int,
                            n_taps: int) -> tuple[float, int] | None:
    """Replay :func:`find_tag_timing`'s selection on a metric table.

    ``metric[off - grid0]`` holds the (penalised) metric for candidate
    offset ``off`` and ``feasible`` masks valid entries.  The selection
    logic -- coarse sweep order, strict-less tie-breaks, single-sample
    refinement, the 1.5x boundary-walk tolerance -- is the verbatim walk
    from :func:`find_tag_timing`, factored out so batched decoders that
    precompute the whole candidate grid (one
    :class:`~repro.reader.fastpath.BatchPreambleSolver` sweep per batch)
    pick the identical winning offset per element.  Returns
    ``(metric, offset)`` or ``None`` when no candidate is feasible.
    """
    def mat(off: int) -> float | None:
        i = off - grid0
        if not feasible[i]:
            return None
        return float(metric[i])

    best: tuple[float, int] | None = None
    for off in range(-search, search + 1, step):
        m = mat(off)
        if m is None:
            continue
        if best is None or m < best[0]:
            best = (m, off)
    if best is None:
        return None
    coarse = best[1]
    for off in range(coarse - step + 1, coarse + step):
        if off == coarse:
            continue
        m = mat(off)
        if m is not None and m < best[0]:
            best = (m, off)
    tol = 1.5 * best[0] + 1e-30
    for off in range(best[1] + 1, best[1] + 1 + n_taps + step):
        m = mat(off)
        if m is None or m > tol:
            break
        best = (m, off)
    return best
