"""PSK demodulation of MRC symbol statistics with per-symbol noise.

Supports hard slicing and per-symbol max-log LLRs (each MRC output has
its own noise variance because template energy varies across the WiFi
excitation).
"""

from __future__ import annotations

import numpy as np

from ..wifi.mapper import BITS_PER_SYMBOL, psk_constellation

__all__ = ["psk_hard_bits", "psk_soft_llrs", "estimate_symbol_noise"]


def psk_hard_bits(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Nearest-constellation-point hard decisions."""
    from ..wifi.mapper import psk_demap_hard

    return psk_demap_hard(np.asarray(symbols), modulation)


def psk_soft_llrs(symbols: np.ndarray, modulation: str,
                  noise_var: np.ndarray | float) -> np.ndarray:
    """Max-log LLRs with a per-symbol noise variance vector.

    Positive LLR favours bit 0, matching the Viterbi convention.

    ``symbols`` may carry leading batch axes ``(..., S)``; the LLR
    stream then comes back as ``(..., S * bits_per_symbol)``, each row
    identical to the scalar call on that row (the distance/min/divide
    chain is elementwise, so batching is exact, not just close).
    """
    const = psk_constellation(modulation)
    nb = BITS_PER_SYMBOL[modulation]
    symbols = np.asarray(symbols, dtype=np.complex128)
    nv = np.broadcast_to(
        np.maximum(np.asarray(noise_var, dtype=np.float64), 1e-15),
        symbols.shape,
    )
    d2 = np.abs(symbols[..., None] - const) ** 2
    labels = np.arange(const.size)
    llrs = np.empty(symbols.shape + (nb,))
    for k in range(nb):
        bit_k = (labels >> (nb - 1 - k)) & 1
        m0 = np.min(d2[..., bit_k == 0], axis=-1)
        m1 = np.min(d2[..., bit_k == 1], axis=-1)
        llrs[..., k] = (m1 - m0) / nv
    if symbols.ndim <= 1:
        return llrs.reshape(-1)
    return llrs.reshape(symbols.shape[:-1] + (-1,))


def estimate_symbol_noise(symbols: np.ndarray, modulation: str) -> float:
    """Blind per-packet noise estimate from slicer error vectors.

    Useful when the thermal floor is unknown: slice each MRC output to
    the nearest constellation point and measure the residual power.
    """
    const = psk_constellation(modulation)
    symbols = np.asarray(symbols, dtype=np.complex128)
    if symbols.size == 0:
        raise ValueError("no symbols")
    idx = np.argmin(np.abs(symbols[:, None] - const[None, :]), axis=1)
    err = symbols - const[idx]
    return float(np.mean(np.abs(err) ** 2))
