"""The link doctor: explain *why* a backscatter decode failed.

Takes a :class:`~repro.reader.reader.ReaderResult` (and optionally the
:class:`~repro.link.session.SessionResult` around it) and walks the
pipeline stages in order, reporting the first thing that looks broken
and the margin at every stage -- the tool you want when a deployment
underperforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tag.config import TagConfig
from .rate_adapt import required_snr_db

__all__ = ["StageReport", "LinkDiagnosis", "diagnose",
           "diagnose_from_probes"]


@dataclass(frozen=True)
class StageReport:
    """One pipeline stage's health."""

    stage: str
    ok: bool
    detail: str


@dataclass
class LinkDiagnosis:
    """Ordered stage reports plus the top-line verdict."""

    decoded: bool
    stages: list[StageReport] = field(default_factory=list)

    @property
    def first_failure(self) -> StageReport | None:
        """The earliest unhealthy stage, if any."""
        for s in self.stages:
            if not s.ok:
                return s
        return None

    def format(self) -> str:
        """Human-readable report."""
        lines = [
            "link diagnosis: "
            + ("DECODED" if self.decoded else "FAILED"),
        ]
        for s in self.stages:
            mark = "ok " if s.ok else "BAD"
            lines.append(f"  [{mark}] {s.stage:14} {s.detail}")
        culprit = self.first_failure
        if culprit is not None:
            lines.append(f"  => first failing stage: {culprit.stage}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def diagnose(result, config: TagConfig, *,
             thermal_floor_dbm: float = -95.0) -> LinkDiagnosis:
    """Walk a :class:`ReaderResult`'s diagnostics stage by stage."""
    d = LinkDiagnosis(decoded=bool(result.ok))

    # 1. self-interference cancellation
    c = result.cancellation
    if c is None:
        d.stages.append(StageReport(
            "cancellation", False, "stage never ran"))
        return d
    floor_dbm = 10 * np.log10(max(result.noise_floor_mw, 1e-30))
    rise = floor_dbm - thermal_floor_dbm
    canc_ok = not c.adc_saturated and rise < 10.0
    detail = (f"total {c.total_depth_db:.1f} dB, floor {floor_dbm:.1f} "
              f"dBm ({rise:+.1f} dB vs thermal)")
    if c.adc_saturated:
        detail += ", ADC SATURATED (analog stage insufficient)"
    d.stages.append(StageReport("cancellation", canc_ok, detail))

    # 2. timing + channel estimation
    if result.sync is None or result.channel is None:
        d.stages.append(StageReport(
            "sync/estimate", False,
            f"no timing lock ({result.failure})"))
        return d
    est = result.channel
    # The normalised residual is (per-sample noise)/(backscatter gain):
    # healthy links sit well below ~10 even when per-sample SNR < 0 dB
    # (MRC recovers it); garbage timing fits land orders of magnitude
    # higher.
    est_ok = result.sync.metric < 10.0
    d.stages.append(StageReport(
        "sync/estimate", est_ok,
        f"offset {result.sync.offset_samples:+d} samples, normalised "
        f"residual {result.sync.metric:.3g}, channel gain "
        f"{10 * np.log10(max(est.gain, 1e-30)):.1f} dB",
    ))

    # 3. post-MRC SNR vs the operating point's requirement
    need = required_snr_db(config)
    snr = result.symbol_snr_db
    snr_ok = bool(np.isfinite(snr) and snr >= need)
    d.stages.append(StageReport(
        "mrc snr", snr_ok,
        f"{snr:.1f} dB measured vs {need:.1f} dB required for "
        f"{config.describe()} (margin {snr - need:+.1f} dB)",
    ))

    # 4. frame
    if result.decode is None or result.decode.frame is None:
        d.stages.append(StageReport("frame", False, "nothing decoded"))
    else:
        fr = result.decode.frame
        d.stages.append(StageReport(
            "frame", fr.ok,
            f"header {'ok' if fr.header_ok else 'BAD'}, payload CRC "
            f"{'ok' if fr.crc_ok else 'BAD'}, "
            f"{result.payload_bits.size} bits",
        ))
    return d


def _probe_float(probes: dict, name: str) -> float:
    """One probe as a float (NaN when absent or non-numeric)."""
    value = probes.get(name)
    if value is None:
        return float("nan")
    try:
        return float(value)
    except (TypeError, ValueError):
        return float("nan")


def diagnose_from_probes(stage_probes: dict[str, dict], *,
                         thermal_floor_dbm: float = -95.0
                         ) -> LinkDiagnosis:
    """The link doctor's verdicts from telemetry probes alone.

    ``stage_probes`` maps span names (``"cancellation"``, ``"sync"``,
    ``"channel_est"``, ``"mrc"``, ``"decode"``, ``"reader.decode"``) to
    their probe dicts, exactly as recorded by the instrumented pipeline
    (see ``docs/TELEMETRY.md``).  The thresholds mirror
    :func:`diagnose`, so a ``repro trace`` waterfall and an in-process
    diagnosis of the same decode agree.
    """
    root = stage_probes.get("reader.decode", {})
    d = LinkDiagnosis(decoded=bool(root.get("ok", 0)))

    # 1. self-interference cancellation
    canc = stage_probes.get("cancellation")
    if canc is None:
        d.stages.append(StageReport(
            "cancellation", False, "stage never ran"))
        return d
    floor_dbm = _probe_float(canc, "residual_si_dbm")
    rise = floor_dbm - thermal_floor_dbm
    saturated = bool(canc.get("adc_saturated", 0))
    canc_ok = not saturated and bool(np.isfinite(rise) and rise < 10.0)
    detail = (f"total {_probe_float(canc, 'total_depth_db'):.1f} dB, "
              f"floor {floor_dbm:.1f} dBm ({rise:+.1f} dB vs thermal)")
    if saturated:
        detail += ", ADC SATURATED (analog stage insufficient)"
    d.stages.append(StageReport("cancellation", canc_ok, detail))

    # 2. timing + channel estimation
    sync = stage_probes.get("sync")
    if sync is None:
        failure = root.get("failure", "stage never ran")
        d.stages.append(StageReport(
            "sync/estimate", False, f"no timing lock ({failure})"))
        return d
    est = stage_probes.get("channel_est", {})
    metric = _probe_float(sync, "metric")
    est_ok = bool(np.isfinite(metric) and metric < 10.0)
    offset = _probe_float(sync, "offset_samples")
    offset_txt = f"{int(offset):+d}" if np.isfinite(offset) else "?"
    detail = (f"offset {offset_txt} samples, normalised residual "
              f"{metric:.3g}, channel gain "
              f"{_probe_float(est, 'gain_db'):.1f} dB")
    cond = _probe_float(est, "condition_number")
    if np.isfinite(cond):
        detail += f", cond {cond:.3g}"
    d.stages.append(StageReport("sync/estimate", est_ok, detail))

    # 3. post-MRC SNR vs the operating point's requirement
    snr = _probe_float(root, "symbol_snr_db")
    if not np.isfinite(snr):
        snr = _probe_float(stage_probes.get("mrc", {}), "mean_snr_db")
    need = _probe_float(root, "required_snr_db")
    if np.isfinite(need):
        snr_ok = bool(np.isfinite(snr) and snr >= need)
        detail = (f"{snr:.1f} dB measured vs {need:.1f} dB required "
                  f"(margin {snr - need:+.1f} dB)")
    else:
        snr_ok = bool(np.isfinite(snr))
        detail = f"{snr:.1f} dB measured (no requirement recorded)"
    d.stages.append(StageReport("mrc snr", snr_ok, detail))

    # 4. frame
    dec = stage_probes.get("decode")
    if dec is None:
        d.stages.append(StageReport("frame", False, "nothing decoded"))
        return d
    frame_ok = bool(dec.get("frame_ok", 0))
    n_bits = _probe_float(dec, "n_payload_bits")
    n_bits = int(n_bits) if np.isfinite(n_bits) else 0
    detail = f"{'ok' if frame_ok else 'BAD'}, {n_bits} bits"
    agreement = _probe_float(dec, "viterbi_agreement")
    if np.isfinite(agreement):
        detail += f", viterbi agreement {agreement:.3f}"
    d.stages.append(StageReport("frame", frame_ok, detail))
    return d
