"""The BackFi AP/reader receive pipeline (paper Fig. 5).

Order of operations for one excitation packet:

1. analog + digital self-interference cancellation (trained on the tag's
   silent period),
2. fine tag timing recovery + combined forward-backward channel
   estimation from the tag's PN preamble,
3. per-symbol maximal-ratio combining of the payload,
4. soft PSK demapping, Viterbi decoding, frame CRC validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..channel.noise import noise_power_mw
from ..constants import SAMPLES_PER_US, SILENT_US
from ..link.protocol import ApTimeline
from ..tag.config import TagConfig
from ..telemetry import get_collector
from .cancellation import CancellationResult, SelfInterferenceCanceller
from .channel_est import ChannelEstimate
from .config import ReaderConfig
from .decoder import TagDecodeOutput, decode_tag_symbols
from .failures import FailureKind, ReaderFailure
from .mrc import MrcOutput, expected_template, mrc_combine
from .sync import SyncResult, find_tag_timing

__all__ = ["BackFiReader", "ReaderResult"]

RESIDUAL_FLOOR_RISE_DB = 10.0
"""Noise-floor rise over thermal beyond which a CRC failure is blamed on
the cancellation residue rather than on plain SNR shortfall (the same
threshold :func:`repro.reader.diagnostics.diagnose` uses)."""


@dataclass
class ReaderResult:
    """Everything the reader learned from one packet."""

    ok: bool
    payload_bits: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint8), repr=False
    )
    n_symbols: int = 0
    symbol_snr_db: float = float("nan")
    noise_floor_mw: float = float("nan")
    cancellation: CancellationResult | None = None
    sync: SyncResult | None = None
    channel: ChannelEstimate | None = None
    mrc: MrcOutput | None = None
    decode: TagDecodeOutput | None = None
    failure: ReaderFailure | None = None
    recovery_attempts: tuple[str, ...] = ()
    """Escalations tried before this result (empty when the first pass
    succeeded or the failure kind has no reader-side recovery)."""
    recovered: bool = False
    """Whether an escalation turned an initial failure into a decode."""

    def throughput_bps(self, airtime_s: float) -> float:
        """Delivered information rate over a given air time."""
        if not self.ok or airtime_s <= 0:
            return 0.0
        return self.payload_bits.size / airtime_s


class BackFiReader:
    """Decodes backscatter from one BackFi tag.

    The reader knows the tag's operating point (modulation, code rate,
    symbol rate) because it assigned it -- the paper's rate adaptation
    runs at the reader (Sec. 6.1).
    """

    def __init__(self, tag_config: TagConfig | None = None, *,
                 config: ReaderConfig | None = None,
                 canceller: SelfInterferenceCanceller | None = None,
                 n_channel_taps: int | None = None,
                 sync_search_us: float | None = None,
                 preamble_seed: int | None = None,
                 track_phase: bool | None = None,
                 recovery: bool | None = None,
                 sync_widen_factor: float | None = None):
        base = config if config is not None else ReaderConfig()
        self.tag_config = tag_config or TagConfig()
        self.canceller = canceller or SelfInterferenceCanceller()
        self.n_channel_taps = base.n_channel_taps \
            if n_channel_taps is None else n_channel_taps
        self.sync_search_us = base.sync_search_us \
            if sync_search_us is None else sync_search_us
        self.preamble_seed = base.preamble_seed \
            if preamble_seed is None else preamble_seed
        self.track_phase = base.track_phase \
            if track_phase is None else track_phase
        """Enable decision-directed gain tracking across the payload
        (see :mod:`repro.reader.tracking`)."""
        self.recovery = base.recovery if recovery is None else recovery
        """Escalate on recoverable failures: a sync failure retries with
        a widened search window, a residual-floor/saturation failure
        re-runs cancellation at doubled digital depth.  Each escalation
        runs at most once per decode."""
        self.sync_widen_factor = base.sync_widen_factor \
            if sync_widen_factor is None else sync_widen_factor

    @property
    def config(self) -> ReaderConfig:
        """The reader's current plain-data knobs as a :class:`ReaderConfig`."""
        return ReaderConfig(
            n_channel_taps=self.n_channel_taps,
            sync_search_us=self.sync_search_us,
            preamble_seed=self.preamble_seed,
            track_phase=self.track_phase,
            recovery=self.recovery,
            sync_widen_factor=self.sync_widen_factor,
        )

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def silent_rows(timeline: ApTimeline, margin_us: float = 2.0) -> np.ndarray:
        """Sample indices safely inside the tag's silent period."""
        m = int(margin_us * SAMPLES_PER_US)
        start = timeline.nominal_silent_start + m
        end = timeline.nominal_silent_start + \
            int(SILENT_US * SAMPLES_PER_US) - m
        if end <= start:
            raise ValueError("silent period too short for the margin")
        return np.arange(start, end)

    # -- main entry ----------------------------------------------------

    def decode(self, timeline: ApTimeline, rx: np.ndarray,
               h_env: np.ndarray, *,
               pa_output: np.ndarray | None = None,
               rng: np.random.Generator | None = None) -> ReaderResult:
        """Decode the backscatter riding on one AP transmission.

        Parameters
        ----------
        timeline:
            The AP's own transmission plan (it knows what it sent).
        rx:
            Received samples, aligned with ``timeline.samples``.
        h_env:
            True self-interference channel (the analog canceller's
            tuning target; see :class:`AnalogCanceller`).
        pa_output:
            The transmitted waveform *after* the PA nonlinearity if the
            scene models one; the canceller taps the PA output.  Defaults
            to the ideal waveform.
        """
        tm = get_collector()
        with tm.span("reader.decode") as sp:
            result = self._decode_with_recovery(timeline, rx, h_env,
                                                pa_output=pa_output,
                                                rng=rng)
            if tm.enabled:
                self.probe_decode_result(sp, result)
            return result

    def probe_decode_result(self, sp, result: "ReaderResult") -> None:
        """Attach the standard ``reader.decode`` probes to ``sp``.

        Shared by :meth:`decode` and the streaming decoder so both entry
        points emit the same telemetry surface for one decoded frame.
        """
        from .rate_adapt import required_snr_db

        sp.probe("ok", result.ok)
        sp.probe("n_symbols", result.n_symbols)
        sp.probe("symbol_snr_db", result.symbol_snr_db)
        sp.probe("required_snr_db",
                 required_snr_db(self.tag_config))
        nf = result.noise_floor_mw
        sp.probe("noise_floor_dbm",
                 10.0 * np.log10(max(nf, 1e-30))
                 if np.isfinite(nf) else float("nan"))
        if result.failure:
            sp.probe("failure", str(result.failure))
            sp.probe("failure_kind", result.failure.kind.value)
        if result.recovery_attempts:
            sp.probe("recovery_attempts",
                     "; ".join(result.recovery_attempts))
            sp.probe("recovered", result.recovered)

    def _decode_with_recovery(self, timeline: ApTimeline, rx: np.ndarray,
                              h_env: np.ndarray, *,
                              pa_output: np.ndarray | None = None,
                              rng: np.random.Generator | None = None,
                              first: ReaderResult | None = None
                              ) -> ReaderResult:
        """First pass, then escalate once per recoverable failure kind.

        The ladder: a ``SYNC`` failure widens the timing search window;
        a ``RESIDUAL_FLOOR`` or ``SATURATION`` failure re-runs the whole
        chain with the digital canceller at doubled depth.  Escalations
        compose (a widened window persists into a deeper-canceller
        retry) and each action runs at most once, so the decode cost is
        bounded at three passes.

        ``first`` supplies a precomputed first-pass result (the streaming
        decoder's chunk-assembled pass); the escalation ladder on top of
        it is identical either way.
        """
        search_us = self.sync_search_us
        canceller = self.canceller
        attempts: list[str] = []
        tried: set[FailureKind] = set()
        result = first if first is not None else \
            self._decode(timeline, rx, h_env, pa_output=pa_output,
                         rng=rng, search_us=search_us,
                         canceller=canceller)
        while (self.recovery and not result.ok
               and result.failure is not None
               and result.failure.recoverable
               and result.failure.kind not in tried):
            kind = result.failure.kind
            tried.add(kind)
            if kind is FailureKind.SYNC:
                search_us = search_us * self.sync_widen_factor
                attempts.append(
                    f"sync: widened search window to {search_us:g} us")
            else:  # RESIDUAL_FLOOR or SATURATION
                canceller = canceller.deepen()
                attempts.append(
                    "cancellation: re-ran with "
                    f"{canceller.digital.n_taps} digital taps")
                # Both floor kinds share one deepen action.
                tried.update({FailureKind.RESIDUAL_FLOOR,
                              FailureKind.SATURATION})
            result = self._decode(timeline, rx, h_env,
                                  pa_output=pa_output, rng=rng,
                                  search_us=search_us,
                                  canceller=canceller)
        if attempts:
            result = replace(result, recovery_attempts=tuple(attempts),
                             recovered=result.ok)
        return result

    def _decode(self, timeline: ApTimeline, rx: np.ndarray,
                h_env: np.ndarray, *,
                pa_output: np.ndarray | None = None,
                rng: np.random.Generator | None = None,
                search_us: float | None = None,
                canceller: SelfInterferenceCanceller | None = None,
                canc: CancellationResult | None = None,
                sync_center: int | None = None
                ) -> ReaderResult:
        """One pipeline pass.

        ``canc`` injects a precomputed cancellation result (the streaming
        decoder assembles one from chunks); ``sync_center`` recenters the
        timing search away from the protocol's nominal preamble start (a
        warm-started session searches around the previous exchange's
        offset).  Both default to the batch behaviour.
        """
        if search_us is None:
            search_us = self.sync_search_us
        if canceller is None:
            canceller = self.canceller
        rx = np.asarray(rx, dtype=np.complex128)
        x = timeline.samples if pa_output is None else \
            np.asarray(pa_output, dtype=np.complex128)
        if rx.size != x.size:
            raise ValueError("rx must align with the transmitted waveform")

        # 1. self-interference cancellation
        silent = self.silent_rows(timeline)
        if canc is None:
            canc = canceller.cancel(x, rx, h_env, silent, rng=rng)
        cleaned = canc.cleaned
        # Estimate the effective noise floor on the part of the silent
        # period the digital canceller did not train on (last quarter).
        held_out = silent[(3 * silent.size) // 4:]
        noise_floor = float(np.mean(np.abs(cleaned[held_out]) ** 2))

        # 2. timing + channel estimation
        try:
            sync = find_tag_timing(
                x, cleaned,
                timeline.nominal_preamble_start if sync_center is None
                else sync_center,
                timeline.preamble_us,
                search_us=search_us,
                n_taps=self.n_channel_taps,
                preamble_seed=self.preamble_seed,
            )
        except ValueError as exc:
            return ReaderResult(
                ok=False, cancellation=canc,
                noise_floor_mw=noise_floor,
                failure=ReaderFailure(FailureKind.SYNC, str(exc)),
            )
        est = sync.estimate

        # 3. MRC combining over the payload region
        sps = self.tag_config.samples_per_symbol
        data_start = sync.preamble_start + \
            int(timeline.preamble_us * SAMPLES_PER_US)
        n_symbols = (timeline.wifi_end - data_start) // sps
        if n_symbols < 1:
            return ReaderResult(
                ok=False, cancellation=canc, sync=sync,
                channel=est, noise_floor_mw=noise_floor,
                failure=ReaderFailure(FailureKind.NO_CAPACITY,
                                      "no room for payload symbols"),
            )
        template = expected_template(x, est.h_fb, cleaned.size)
        # Guard only the channel's actual delay spread (the ISI region at
        # each phase switch), not the full estimation-filter length --
        # at 2.5 Msym/s a symbol is only 8 samples long.
        guard = min(6, max(sps // 2, 1), sps - 1)
        mrc = mrc_combine(
            cleaned, template, data_start, sps, int(n_symbols),
            guard=guard, noise_floor=noise_floor,
        )

        # 4. decode (optionally with decision-directed drift tracking)
        symbols = mrc.symbols
        if self.track_phase:
            from .tracking import phase_track

            symbols = phase_track(
                symbols, self.tag_config.modulation
            ).symbols
        decode = decode_tag_symbols(symbols, mrc.noise_var,
                                    self.tag_config)
        ok = decode.ok
        failure = None
        if not ok:
            failure = self._classify_crc_failure(canc, noise_floor)
        return ReaderResult(
            ok=ok,
            payload_bits=decode.payload_bits,
            n_symbols=int(n_symbols),
            symbol_snr_db=mrc.mean_snr_db(),
            noise_floor_mw=noise_floor,
            cancellation=canc,
            sync=sync,
            channel=est,
            mrc=mrc,
            decode=decode,
            failure=failure,
        )

    @staticmethod
    def _classify_crc_failure(canc: CancellationResult,
                              noise_floor_mw: float) -> ReaderFailure:
        """Blame a CRC failure on the most anomalous upstream symptom.

        An ADC driven past full scale or a noise floor far above
        thermal points at the cancellation chain (recoverable by
        deepening the digital canceller); otherwise the frame simply
        did not have the SNR, and only the link layer can help.
        """
        if getattr(canc, "adc_saturated", False):
            return ReaderFailure(FailureKind.SATURATION,
                                 "frame CRC failed with ADC at full scale")
        thermal = noise_power_mw()
        if noise_floor_mw > 0 and thermal > 0:
            rise_db = 10.0 * float(np.log10(noise_floor_mw / thermal))
            if rise_db > RESIDUAL_FLOOR_RISE_DB:
                return ReaderFailure(
                    FailureKind.RESIDUAL_FLOOR,
                    f"frame CRC failed with noise floor {rise_db:.1f} dB "
                    "above thermal",
                )
        return ReaderFailure(FailureKind.CRC, "frame CRC failed")
