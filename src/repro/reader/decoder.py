"""Tag bit-stream decoding: soft Viterbi + frame parsing."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coding.convolutional import CONSTRAINT, depuncture
from ..coding.viterbi import viterbi_decode_soft
from ..link.frames import TagFrame, parse_frame_bits
from ..tag.config import TagConfig
from .demod import psk_soft_llrs

__all__ = ["TagDecodeOutput", "decode_tag_symbols"]


@dataclass
class TagDecodeOutput:
    """Decoded tag data plus diagnostics."""

    frame: TagFrame | None
    decoded_bits: np.ndarray = field(repr=False)
    llrs: np.ndarray = field(repr=False)

    @property
    def ok(self) -> bool:
        """Frame recovered and CRC-validated."""
        return self.frame is not None and self.frame.ok

    @property
    def payload_bits(self) -> np.ndarray:
        """The validated payload (empty if decoding failed)."""
        if self.frame is None:
            return np.empty(0, dtype=np.uint8)
        return self.frame.payload_bits


def decode_tag_symbols(symbols: np.ndarray, noise_var: np.ndarray,
                       config: TagConfig) -> TagDecodeOutput:
    """Soft-demap MRC outputs, Viterbi-decode and parse the tag frame."""
    symbols = np.asarray(symbols, dtype=np.complex128)
    llrs = psk_soft_llrs(symbols, config.modulation, noise_var)

    if config.code_rate == "1/2":
        mother = llrs
        if mother.size % 2:
            mother = mother[:-1]
    else:
        # The tag padded coded bits up to a whole symbol; the mother
        # stream length must satisfy the puncturing pattern.  Trim the
        # coded stream to the largest length consistent with rate 2/3
        # (3 coded bits per 4 mother bits).
        n_coded = llrs.size - (llrs.size % 3)
        mother = depuncture(llrs[:n_coded], config.code_rate,
                            n_coded // 3 * 4)
    if mother.size < 2 * CONSTRAINT:
        return TagDecodeOutput(
            frame=None,
            decoded_bits=np.empty(0, dtype=np.uint8),
            llrs=llrs,
        )
    decoded = viterbi_decode_soft(mother, terminated=False)
    frame = parse_frame_bits(decoded)
    return TagDecodeOutput(frame=frame, decoded_bits=decoded, llrs=llrs)
