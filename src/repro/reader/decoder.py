"""Tag bit-stream decoding: soft Viterbi + frame parsing."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..coding.convolutional import CONSTRAINT, depuncture
from ..coding.viterbi import viterbi_decode_soft
from ..link.frames import TagFrame, parse_frame_bits
from ..tag.config import TagConfig
from ..telemetry import get_collector
from .demod import estimate_symbol_noise, psk_soft_llrs

__all__ = ["TagDecodeOutput", "decode_tag_symbols"]


@dataclass
class TagDecodeOutput:
    """Decoded tag data plus diagnostics."""

    frame: TagFrame | None
    decoded_bits: np.ndarray = field(repr=False)
    llrs: np.ndarray = field(repr=False)

    @property
    def ok(self) -> bool:
        """Frame recovered and CRC-validated."""
        return self.frame is not None and self.frame.ok

    @property
    def payload_bits(self) -> np.ndarray:
        """The validated payload (empty if decoding failed)."""
        if self.frame is None:
            return np.empty(0, dtype=np.uint8)
        return self.frame.payload_bits


def decode_tag_symbols(symbols: np.ndarray, noise_var: np.ndarray,
                       config: TagConfig) -> TagDecodeOutput:
    """Soft-demap MRC outputs, Viterbi-decode and parse the tag frame."""
    symbols = np.asarray(symbols, dtype=np.complex128)
    tm = get_collector()
    with tm.span("decode") as sp:
        llrs = psk_soft_llrs(symbols, config.modulation, noise_var)

        if config.code_rate == "1/2":
            mother = llrs
            if mother.size % 2:
                mother = mother[:-1]
        else:
            # The tag padded coded bits up to a whole symbol; the mother
            # stream length must satisfy the puncturing pattern.  Trim
            # the coded stream to the largest length consistent with
            # rate 2/3 (3 coded bits per 4 mother bits).
            n_coded = llrs.size - (llrs.size % 3)
            mother = depuncture(llrs[:n_coded], config.code_rate,
                                n_coded // 3 * 4)
        if mother.size < 2 * CONSTRAINT:
            return TagDecodeOutput(
                frame=None,
                decoded_bits=np.empty(0, dtype=np.uint8),
                llrs=llrs,
            )
        decoded, path_metric = viterbi_decode_soft(
            mother, terminated=False, return_metric=True)
        frame = parse_frame_bits(decoded)
        out = TagDecodeOutput(frame=frame, decoded_bits=decoded,
                              llrs=llrs)
        if tm.enabled:
            abs_sum = float(np.sum(np.abs(mother)))
            sp.probe("path_metric", path_metric)
            sp.probe("viterbi_agreement",
                     path_metric / abs_sum if abs_sum > 0 else 0.0)
            sp.probe("mean_abs_llr", float(np.mean(np.abs(llrs)))
                     if llrs.size else 0.0)
            # Post-MRC EVM: RMS slicer error over RMS symbol magnitude
            # (the per-symbol constellation quality GuardRider-style
            # field debugging wants alongside SNR).
            sym_power = float(np.mean(np.abs(symbols) ** 2)) \
                if symbols.size else 0.0
            if symbols.size and sym_power > 0:
                err_power = estimate_symbol_noise(
                    symbols, config.modulation)
                sp.probe("evm_rms", float(np.sqrt(err_power
                                                  / sym_power)))
            sp.probe("frame_ok", out.ok)
            sp.probe("n_payload_bits", int(out.payload_bits.size))
        return out
