"""Decision-directed phase/gain tracking across a tag packet.

The combined channel is estimated once from the preamble, but the
backscatter path drifts over a 1-4 ms packet (tag clock wander, channel
coherence -- the ``BACKSCATTER_EVM`` impairment).  This optional decoder
stage tracks the residual complex gain block-by-block from sliced
symbols, recovering part of the SNR ceiling.  An extension beyond the
paper (which tops out at 4 ms packets where drift is tolerable), useful
for longer excitations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..wifi.mapper import psk_constellation

__all__ = ["TrackingResult", "phase_track"]


@dataclass
class TrackingResult:
    """Tracked symbols plus the gain trajectory."""

    symbols: np.ndarray = field(repr=False)
    gains: np.ndarray = field(repr=False)

    @property
    def n_blocks(self) -> int:
        """Number of tracking blocks."""
        return int(self.gains.size)


def phase_track(symbols: np.ndarray, modulation: str, *,
                block_size: int = 64,
                smoothing: float = 0.5,
                max_correction: float = 0.45) -> TrackingResult:
    """Track and remove slow residual gain drift, decision-directed.

    Parameters
    ----------
    symbols:
        MRC outputs (approximately unit-modulus PSK points).
    modulation:
        "bpsk" / "qpsk" / "16psk".
    block_size:
        Symbols per gain update; must be long enough that decision
        errors average out, short relative to the drift coherence.
    smoothing:
        IIR coefficient on the block gain estimates (0 = frozen,
        1 = jump to each block's estimate).
    max_correction:
        Cap on the per-block phase step [rad]; prevents a burst of
        decision errors from spinning the tracker into a cycle slip.

    Returns
    -------
    TrackingResult
        Corrected symbols and the per-block gain trajectory applied.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    if block_size < 4:
        raise ValueError("block_size must be >= 4")
    if not 0.0 <= smoothing <= 1.0:
        raise ValueError("smoothing must be in [0, 1]")
    const = psk_constellation(modulation)
    corrected = np.empty_like(symbols)
    n_blocks = -(-symbols.size // block_size)
    gains = np.ones(n_blocks, dtype=np.complex128)
    g = 1.0 + 0.0j
    for b in range(n_blocks):
        blk = symbols[b * block_size:(b + 1) * block_size]
        # Slice under the current gain hypothesis.
        undone = blk / g
        idx = np.argmin(np.abs(undone[:, None] - const[None, :]), axis=1)
        ref = const[idx]
        num = np.vdot(ref, blk)
        den = np.vdot(ref, ref).real
        if den > 0 and num != 0:
            g_est = num / den
            # Blend, with a bounded phase step.
            step = g_est / g
            ang = np.angle(step)
            ang = float(np.clip(ang, -max_correction, max_correction))
            mag = float(np.clip(np.abs(step), 0.5, 2.0))
            g = g * (1.0 - smoothing) + \
                g * mag * np.exp(1j * ang) * smoothing
        gains[b] = g
        corrected[b * block_size:(b + 1) * block_size] = blk / g
    return TrackingResult(symbols=corrected, gains=gains)
