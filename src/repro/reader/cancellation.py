"""Self-interference cancellation at the BackFi reader (paper Sec. 4.2).

Two stages, as in the full-duplex radio literature the paper builds on:

* **Analog cancellation** happens before the ADC.  We model the analog
  canceller as subtracting the true environmental channel corrupted by a
  component-precision error (RF FIR filters have finitely accurate delay
  taps and attenuators), achieving a configurable cancellation depth.
  Without it, the self-interference saturates the ADC and the weak
  backscatter signal is lost in quantisation error.

* **Digital cancellation** estimates the *residual* linear
  self-interference channel by least squares over the tag's silent
  period -- the paper's key protocol trick that keeps the backscatter
  signal out of the cancellation filter -- and subtracts it from the
  entire packet.

What is left is the nonlinear PA residue plus thermal noise, reproducing
the ~2 dB SNR degradation of paper Fig. 11a.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.hardware import Adc
from ..channel.noise import noise_power_mw
from ..dsp.fastpath import fast_convolve, fastpath_enabled
from ..dsp.measurements import residual_power_db
from ..telemetry import get_collector
from ..utils.conversions import db_to_linear

__all__ = [
    "ls_channel_estimate",
    "convolution_matrix",
    "AnalogCanceller",
    "DigitalCanceller",
    "CancellationResult",
    "SelfInterferenceCanceller",
    "StagedCancellation",
    "DEFAULT_ANALOG_RNG_SEED",
    "WARM_REUSE_MAX_RISE_DB",
]

DEFAULT_ANALOG_RNG_SEED = 0xBACF1
"""Seed for :meth:`AnalogCanceller.cancel` when no generator is passed.

The analog canceller's component-precision error is the only random
draw inside the reader; an *unseeded* default here would silently break
the repo's bit-identical-at-any-jobs-count guarantee for any caller
that forgets to thread its generator through.  Callers that care about
the error realisation (every experiment does) should still pass ``rng``
explicitly."""

WARM_REUSE_MAX_RISE_DB = 10.0
"""Residual-floor rise over thermal (held-out silent tail, dB) up to
which a streaming session may reuse the previous exchange's digital
taps instead of re-fitting.  Matches the reader's
``RESIDUAL_FLOOR_RISE_DB`` diagnosis threshold: a reused fit that would
trip the residual-floor classifier is refit instead."""

NORMAL_EQ_MIN_ROWS = 4
"""Row count above which ``method="auto"`` prefers the normal-equation
solve over the lstsq SVD (the SVD only wins on tiny systems where its
robustness is free)."""


def convolution_matrix(x: np.ndarray, n_taps: int,
                       rows: np.ndarray | None = None) -> np.ndarray:
    """Toeplitz matrix ``X`` with ``(X h)[n] = sum_k h[k] x[n-k]``.

    ``rows`` selects which output indices to include (defaults to all).
    """
    x = np.asarray(x, dtype=np.complex128)
    if n_taps < 1:
        raise ValueError("need at least one tap")
    padded = np.concatenate([np.zeros(n_taps - 1, dtype=np.complex128), x])
    full = np.lib.stride_tricks.sliding_window_view(padded, n_taps)[:, ::-1]
    if rows is None:
        return full
    return full[np.asarray(rows, dtype=np.intp)]


def ls_channel_estimate(x: np.ndarray, y: np.ndarray, n_taps: int,
                        rows: np.ndarray | None = None,
                        rcond: float = 1e-9,
                        ridge: float = 1e-3,
                        method: str = "auto") -> np.ndarray:
    """Least-squares FIR channel estimate from known input/output.

    ``ridge`` adds Tikhonov regularisation relative to the excitation's
    column energy.  For a wideband input it is negligible; for a
    narrowband input (e.g. a BLE excitation) it suppresses the
    ill-conditioned null-space directions that would otherwise blow the
    estimate's norm up while "explaining" noise.

    ``method`` selects the solver:

    * ``"lstsq"`` -- the reference path: ridge rows appended to the
      design matrix, solved by SVD (``np.linalg.lstsq``).
    * ``"normal"`` -- the fast path: the Toeplitz-structured design
      matrix is collapsed into its ``n_taps x n_taps`` Gram matrix
      (normal equations, ridge folded into the diagonal) and solved
      directly.  Same minimiser as the SVD route up to
      float64 rounding, at a fraction of the cost for the long
      silent-period fits the :class:`DigitalCanceller` runs.
    * ``"auto"`` -- ``"normal"`` whenever the system is regularised and
      overdetermined enough for it to be safe (and the fast path is
      globally enabled), else ``"lstsq"``.

    ``y`` may carry leading batch axes ``(..., n)`` -- a stack of receive
    signals observed through the *same* excitation ``x``.  The design
    matrix is factored once and every right-hand side is solved in one
    multi-RHS call; the result has shape ``(..., n_taps)`` and each row
    matches the scalar call on that row.
    """
    x = np.asarray(x, dtype=np.complex128)
    y = np.asarray(y, dtype=np.complex128)
    if x.ndim != 1:
        raise ValueError(
            "x must be 1-D (one shared excitation; stack y instead)")
    n_obs = y.shape[-1] if y.ndim else y.size
    if n_obs != x.size:
        raise ValueError("x and y must be the same length")
    if method not in ("auto", "normal", "lstsq"):
        raise ValueError(f"unknown method {method!r}")
    a = convolution_matrix(x, n_taps, rows)
    b = y if rows is None else y[..., np.asarray(rows, dtype=np.intp)]
    if a.shape[0] < n_taps:
        raise ValueError(
            f"only {a.shape[0]} equations for {n_taps} taps"
        )
    if method == "auto":
        method = "normal" if (
            fastpath_enabled() and ridge > 0
            and a.shape[0] >= NORMAL_EQ_MIN_ROWS * n_taps
        ) else "lstsq"
    if method == "normal":
        h = _normal_equation_solve(a, b, ridge)
        if h is not None:
            return h
        # Singular Gram despite the ridge -- fall through to the SVD.
    if ridge > 0:
        col_energy = float(np.mean(np.sum(np.abs(a) ** 2, axis=0)))
        lam = np.sqrt(ridge * max(col_energy, 1e-300))
        a = np.vstack([a, lam * np.eye(n_taps, dtype=np.complex128)])
        zeros = np.zeros(b.shape[:-1] + (n_taps,), dtype=np.complex128)
        b = np.concatenate([b, zeros], axis=-1)
    if b.ndim <= 1:
        h, *_ = np.linalg.lstsq(a, b, rcond=rcond)
        return h
    batch = b.shape[:-1]
    h, *_ = np.linalg.lstsq(a, b.reshape(-1, b.shape[-1]).T, rcond=rcond)
    return h.T.reshape(batch + (n_taps,))


def _normal_equation_solve(a: np.ndarray, b: np.ndarray,
                           ridge: float) -> np.ndarray | None:
    """Solve ``(A^H A + lam^2 I) h = A^H b``; None if singular.

    The ridge keeps the Gram positive definite, so a plain LAPACK solve
    on the tiny ``n_taps x n_taps`` system is exact to rounding.  The
    solve itself is resolved through the backend registry (slot
    ``"solve"``); auto-detection prefers numpy's over SciPy's Cholesky
    pair because its call overhead is a third of the wrapper-heavy scipy
    route on sub-100-tap systems.  ``b`` may be stacked ``(..., rows)``;
    all right-hand sides share the one Gram factorisation.
    """
    from ..dsp.backends import get_kernel

    ac = a.conj().T
    g = ac @ a
    if ridge > 0:
        # Identical regulariser to the appended-rows form: lam^2 is the
        # ridge times the mean column energy, which is mean(diag(G)).
        col_energy = float(np.mean(g.diagonal().real))
        g.flat[:: g.shape[0] + 1] += ridge * max(col_energy, 1e-300)
    try:
        if b.ndim <= 1:
            return get_kernel("solve")(g, ac @ b)
        batch = b.shape[:-1]
        rhs = ac @ b.reshape(-1, b.shape[-1]).T
        h = get_kernel("solve")(g, rhs)
        return h.T.reshape(batch + (g.shape[0],))
    except np.linalg.LinAlgError:
        return None


@dataclass(frozen=True)
class AnalogCanceller:
    """Behavioural model of the RF cancellation board.

    Subtracts ``x * h_hat`` where ``h_hat`` is the true channel with a
    relative error of ``-depth_db`` -- i.e. the canceller leaves a residue
    ``depth_db`` below the original self-interference.
    """

    depth_db: float = 60.0
    n_taps: int = 16

    def reconstruction(self, x: np.ndarray, h_env: np.ndarray, n_out: int,
                       rng: np.random.Generator | None = None) -> np.ndarray:
        """The canceller board's reconstruction of ``x * h_env``.

        Drawing the component-precision error and convolving the full
        excitation happens here, once; subtracting it from the receive
        signal is a separate (chunkable) step, which is what lets the
        streaming decoder cancel sample blocks as they arrive while
        staying bit-identical to the one-shot path.

        When ``rng`` is omitted the component-precision error is drawn
        from a generator seeded with :data:`DEFAULT_ANALOG_RNG_SEED`, so
        the result is deterministic either way -- an unseeded fallback
        here would break byte-identical experiment tables for any call
        site that forgets to pass its generator.
        """
        return fast_convolve(x, self.tuned_taps(h_env, rng=rng))[:n_out]

    def tuned_taps(self, h_env: np.ndarray,
                   rng: np.random.Generator | None = None) -> np.ndarray:
        """The board's tuned tap vector: the true channel plus trim error.

        The error models fixed component precision -- once the board is
        tuned, its taps stay put until it is retuned.  Warm streaming
        sessions rely on exactly that: they draw the taps once and carry
        them across exchanges instead of re-randomising the hardware
        every frame.
        """
        if rng is None:
            rng = np.random.default_rng(DEFAULT_ANALOG_RNG_SEED)
        h = np.asarray(h_env, dtype=np.complex128)[: self.n_taps]
        err_scale = np.sqrt(db_to_linear(-self.depth_db))
        h_power = np.sqrt(np.sum(np.abs(h) ** 2))
        err = (rng.standard_normal(h.size) + 1j * rng.standard_normal(h.size))
        err *= err_scale * h_power / np.sqrt(2.0 * h.size)
        return h + err

    def cancel(self, x: np.ndarray, y: np.ndarray, h_env: np.ndarray,
               rng: np.random.Generator | None = None) -> np.ndarray:
        """Return ``y`` minus the (imperfect) reconstruction of x*h_env."""
        recon = self.reconstruction(x, h_env, np.asarray(y).size, rng=rng)
        return np.asarray(y) - recon


@dataclass(frozen=True)
class DigitalCanceller:
    """Linear LS digital cancellation trained on the silent period.

    ``method`` is forwarded to :func:`ls_channel_estimate`: the default
    ``"auto"`` takes the Cholesky normal-equation fast path for the
    long silent-period fit (the silent period always has far more rows
    than taps); ``"lstsq"`` forces the reference SVD solve.
    """

    n_taps: int = 24
    method: str = "auto"

    def estimate(self, x: np.ndarray, residual: np.ndarray,
                 silent_rows: np.ndarray) -> np.ndarray:
        """Estimate the residual SI channel using only silent samples."""
        return ls_channel_estimate(x, residual, self.n_taps,
                                   rows=silent_rows, method=self.method)

    def cancel(self, x: np.ndarray, residual: np.ndarray,
               silent_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (cleaned signal, estimated channel)."""
        h = self.estimate(x, residual, silent_rows)
        recon = fast_convolve(x, h)[: np.asarray(residual).size]
        return np.asarray(residual) - recon, h


@dataclass
class CancellationResult:
    """Diagnostics of a full cancellation pass."""

    cleaned: np.ndarray = field(repr=False)
    analog_residual_db: float = float("nan")
    digital_residual_db: float = float("nan")
    total_depth_db: float = float("nan")
    adc_saturated: bool = False
    digital_taps: np.ndarray | None = field(default=None, repr=False)
    """The digital-stage FIR estimate this pass used (``None`` when the
    digital stage is disabled).  Streaming sessions carry it forward as
    the next exchange's warm-start candidate."""
    refit: bool = True
    """Whether the digital taps were fit on this capture (``False`` when
    a warm-started pass reused the previous exchange's taps)."""


class SelfInterferenceCanceller:
    """The complete analog -> ADC -> digital cancellation chain."""

    def __init__(self, *, analog: AnalogCanceller | None = None,
                 digital: DigitalCanceller | None = None,
                 adc: Adc | None = None,
                 analog_enabled: bool = True,
                 digital_enabled: bool = True):
        self.analog = analog or AnalogCanceller()
        self.digital = digital or DigitalCanceller()
        self.adc = adc or Adc()
        self.analog_enabled = analog_enabled
        self.digital_enabled = digital_enabled

    def deepen(self, factor: int = 2) -> SelfInterferenceCanceller:
        """A copy of this chain with a longer digital filter.

        The reader's recovery escalation uses this when a decode fails
        with an anomalously high residual floor: more taps capture more
        of the residual SI channel's delay spread.
        """
        return SelfInterferenceCanceller(
            analog=self.analog,
            digital=DigitalCanceller(n_taps=self.digital.n_taps * factor,
                                     method=self.digital.method),
            adc=self.adc,
            analog_enabled=self.analog_enabled,
            digital_enabled=self.digital_enabled,
        )

    def cancel(self, x: np.ndarray, y: np.ndarray, h_env: np.ndarray,
               silent_rows: np.ndarray,
               rng: np.random.Generator | None = None) -> CancellationResult:
        """Run the full chain.

        Parameters
        ----------
        x:
            The known transmitted waveform (after the PA model -- the
            canceller taps the PA output, as in the paper's design).
        y:
            The received waveform (self-interference + backscatter +
            noise).
        h_env:
            The true environment channel (the analog canceller's tuning
            target).
        silent_rows:
            Sample indices of the tag's silent period, used to train the
            digital stage without touching the backscatter signal.
        """
        with get_collector().span("cancellation") as sp:
            return self._cancel(x, y, h_env, silent_rows, sp, rng=rng)

    def _cancel(self, x: np.ndarray, y: np.ndarray, h_env: np.ndarray,
                silent_rows: np.ndarray, sp,
                rng: np.random.Generator | None = None
                ) -> CancellationResult:
        y = np.asarray(y, dtype=np.complex128)
        staged = self.begin(x, h_env, y.size, rng=rng)
        after_analog = staged.analog(y)
        return staged.finish(y, after_analog, silent_rows, sp)

    def begin(self, x: np.ndarray, h_env: np.ndarray, n_out: int,
              rng: np.random.Generator | None = None,
              analog_taps: np.ndarray | None = None
              ) -> "StagedCancellation":
        """Start a cancellation pass whose receive signal arrives later.

        Draws the analog canceller's component-precision error and
        precomputes the full-length reconstruction *now* (the reader
        knows what it transmitted before anything is received), so the
        returned :class:`StagedCancellation` can subtract the analog
        stage from receive-sample chunks as they arrive.  The rng draw
        happens at the same stream position as in :meth:`cancel`, which
        keeps a chunked pass bit-identical to a one-shot pass.

        ``analog_taps`` skips the draw and reuses an already-tuned board
        state (a warm session carrying hardware trim across exchanges);
        ``rng`` is then left untouched, so warm passes trade byte-
        identity with the batch path for the persistence a real board
        has.
        """
        x = np.asarray(x, dtype=np.complex128)
        recon = None
        h_hat = None
        if self.analog_enabled:
            h_hat = np.asarray(analog_taps, dtype=np.complex128) \
                if analog_taps is not None \
                else self.analog.tuned_taps(h_env, rng=rng)
            recon = fast_convolve(x, h_hat)[:n_out]
        return StagedCancellation(chain=self, x=x, recon=recon,
                                  n_out=n_out, analog_taps=h_hat)


class _SilentSpan:
    """Probe sink used when a staged finish runs without a live span."""

    __slots__ = ()

    def probe(self, name, value):
        pass


_SILENT_SP = _SilentSpan()


class StagedCancellation:
    """A cancellation pass split at the analog/digital boundary.

    The analog stage is a per-sample subtraction against a reconstruction
    that is already fully known at :meth:`SelfInterferenceCanceller.begin`
    time, so it streams; everything after it (AGC, ADC, the silent-period
    LS fit) needs global statistics of the capture and runs once at the
    frame barrier in :meth:`finish`.  Both the batch canceller and the
    streaming decoder run through this class, so there is exactly one
    implementation of the chain.
    """

    def __init__(self, *, chain: SelfInterferenceCanceller, x: np.ndarray,
                 recon: np.ndarray | None, n_out: int,
                 analog_taps: np.ndarray | None = None):
        self.chain = chain
        self.x = x
        self.recon = recon
        self.n_out = int(n_out)
        self.analog_taps = analog_taps
        """The analog board state this pass subtracts with (``None`` when
        the analog stage is disabled).  Warm sessions carry it forward."""

    def analog(self, y_chunk: np.ndarray, start: int = 0) -> np.ndarray:
        """Analog-cancel one receive chunk beginning at sample ``start``."""
        y_chunk = np.asarray(y_chunk, dtype=np.complex128)
        if self.recon is None:
            return y_chunk.copy()
        return y_chunk - self.recon[start:start + y_chunk.size]

    def finish(self, y: np.ndarray, after_analog: np.ndarray,
               silent_rows: np.ndarray, sp=None, *,
               warm_taps: np.ndarray | None = None) -> CancellationResult:
        """Run the frame-barrier stages on the assembled capture.

        ``y`` is the raw receive signal (for depth metrics only) and
        ``after_analog`` the concatenation of :meth:`analog` outputs.
        ``warm_taps`` offers a previous exchange's digital FIR estimate:
        it is reused -- skipping the LS fit -- if the held-out silent
        residual it leaves stays within :data:`WARM_REUSE_MAX_RISE_DB`
        of thermal, else the pass falls back to a fresh fit.
        """
        if sp is None:
            sp = _SILENT_SP
        chain = self.chain
        x = self.x
        y = np.asarray(y, dtype=np.complex128)
        after_analog = np.asarray(after_analog, dtype=np.complex128)
        silent_rows = np.asarray(silent_rows, dtype=np.intp)

        # Depth metrics are evaluated on the silent period only: elsewhere
        # the surviving backscatter signal would mask the true SI residue.
        analog_db = residual_power_db(y[silent_rows],
                                      after_analog[silent_rows])

        # AGC + ADC: the converter is scaled to whatever survives analog
        # cancellation.  The AGC statistic is global (RMS over the whole
        # capture), which is why this stage sits behind the frame barrier.
        adc = chain.adc.for_signal(after_analog)
        quantized = adc.quantize(after_analog)
        saturated = bool(
            np.max(np.abs(after_analog.real)) > adc.full_scale
            or np.max(np.abs(after_analog.imag)) > adc.full_scale
        )

        # Train the digital stage on the first 3/4 of the silent period
        # and report depth on the held-out tail, so LS overfitting does
        # not flatter the metric (or the reader's noise-floor estimate).
        split = (3 * silent_rows.size) // 4
        train_rows = silent_rows[:split]
        eval_rows = silent_rows[split:]
        taps: np.ndarray | None = None
        refit = True
        if chain.digital_enabled:
            cleaned = None
            if warm_taps is not None:
                reused = quantized - fast_convolve(x, warm_taps)[
                    :quantized.size]
                residual_mw = float(
                    np.mean(np.abs(reused[eval_rows]) ** 2))
                thermal = noise_power_mw()
                rise_db = 10.0 * np.log10(
                    max(residual_mw, 1e-30) / max(thermal, 1e-30))
                if rise_db <= WARM_REUSE_MAX_RISE_DB:
                    cleaned, taps, refit = reused, warm_taps, False
            if cleaned is None:
                cleaned, taps = chain.digital.cancel(
                    x, quantized, train_rows)
        else:
            cleaned = quantized
        digital_db = residual_power_db(quantized[eval_rows],
                                       cleaned[eval_rows])
        total_db = residual_power_db(y[eval_rows], cleaned[eval_rows])
        # Residual SI power after the full chain, measured on the
        # held-out silent tail (the probe GuardRider-style field
        # debugging wants first).
        residual_mw = float(np.mean(np.abs(cleaned[eval_rows]) ** 2))
        sp.probe("analog_depth_db", analog_db)
        sp.probe("digital_depth_db", digital_db)
        sp.probe("total_depth_db", total_db)
        sp.probe("residual_si_dbm",
                 10.0 * np.log10(max(residual_mw, 1e-30)))
        sp.probe("adc_saturated", saturated)
        if warm_taps is not None:
            sp.probe("digital_refit", refit)
        return CancellationResult(
            cleaned=cleaned,
            analog_residual_db=analog_db,
            digital_residual_db=digital_db,
            total_depth_db=total_db,
            adc_saturated=saturated,
            digital_taps=taps,
            refit=refit,
        )
