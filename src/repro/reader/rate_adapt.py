"""Rate adaptation: pick the lowest-REPB operating point that decodes.

Paper Sec. 6.1: "the rate adaptation algorithm would always pick the
modulation, coding rate and symbol switching rate combination with the
lowest REPB since the most precious resource here is energy."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tag.config import TagConfig, all_tag_configs
from ..tag.energy import EnergyModel, default_energy_model

__all__ = [
    "REQUIRED_SNR_DB",
    "required_snr_db",
    "feasible_configs",
    "select_config",
    "max_throughput_config",
]

# Post-MRC symbol SNR needed to close the link (frame CRC success with
# the K=7 convolutional code), per (modulation, code rate).  Derived from
# the coded PSK waterfalls measured with this stack's decoder.
REQUIRED_SNR_DB: dict[tuple[str, str], float] = {
    ("bpsk", "1/2"): 4.5,
    ("bpsk", "2/3"): 6.0,
    ("qpsk", "1/2"): 7.5,
    ("qpsk", "2/3"): 9.0,
    ("16psk", "1/2"): 16.5,
    ("16psk", "2/3"): 18.0,
}


def required_snr_db(config: TagConfig) -> float:
    """Decoding threshold for one operating point."""
    return REQUIRED_SNR_DB[(config.modulation, config.code_rate)]


@dataclass(frozen=True)
class RateChoice:
    """A selected operating point with its predicted cost."""

    config: TagConfig
    repb: float
    throughput_bps: float


def feasible_configs(snr_db_for: "callable",
                     configs: list[TagConfig] | None = None) -> list[TagConfig]:
    """All operating points whose predicted SNR clears the threshold.

    ``snr_db_for`` maps a :class:`TagConfig` to a predicted post-MRC
    symbol SNR (e.g. from :class:`repro.link.LinkBudget`).
    """
    configs = configs if configs is not None else all_tag_configs()
    return [c for c in configs if snr_db_for(c) >= required_snr_db(c)]


def select_config(snr_db_for: "callable", *,
                  min_throughput_bps: float = 0.0,
                  configs: list[TagConfig] | None = None,
                  energy_model: EnergyModel | None = None) -> RateChoice | None:
    """Lowest-REPB feasible point meeting a throughput floor."""
    model = energy_model or default_energy_model()
    best: RateChoice | None = None
    for cfg in feasible_configs(snr_db_for, configs):
        if cfg.throughput_bps < min_throughput_bps:
            continue
        choice = RateChoice(
            config=cfg, repb=model.repb(cfg),
            throughput_bps=cfg.throughput_bps,
        )
        if best is None or choice.repb < best.repb:
            best = choice
    return best


def max_throughput_config(snr_db_for: "callable", *,
                          configs: list[TagConfig] | None = None,
                          energy_model: EnergyModel | None = None
                          ) -> RateChoice | None:
    """Highest-throughput feasible point (REPB breaks ties)."""
    model = energy_model or default_energy_model()
    best: RateChoice | None = None
    for cfg in feasible_configs(snr_db_for, configs):
        choice = RateChoice(
            config=cfg, repb=model.repb(cfg),
            throughput_bps=cfg.throughput_bps,
        )
        if best is None or choice.throughput_bps > best.throughput_bps or (
            choice.throughput_bps == best.throughput_bps
            and choice.repb < best.repb
        ):
            best = choice
    return best
