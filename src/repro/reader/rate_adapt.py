"""Rate adaptation: pick the lowest-REPB operating point that decodes.

Paper Sec. 6.1: "the rate adaptation algorithm would always pick the
modulation, coding rate and symbol switching rate combination with the
lowest REPB since the most precious resource here is energy."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..tag.config import TagConfig, all_tag_configs
from ..tag.energy import EnergyModel, default_energy_model

__all__ = [
    "REQUIRED_SNR_DB",
    "required_snr_db",
    "robustness_margin_db",
    "fallback_ladder",
    "step_down",
    "most_robust_config",
    "feasible_configs",
    "select_config",
    "max_throughput_config",
]

# Post-MRC symbol SNR needed to close the link (frame CRC success with
# the K=7 convolutional code), per (modulation, code rate).  Derived from
# the coded PSK waterfalls measured with this stack's decoder.
REQUIRED_SNR_DB: dict[tuple[str, str], float] = {
    ("bpsk", "1/2"): 4.5,
    ("bpsk", "2/3"): 6.0,
    ("qpsk", "1/2"): 7.5,
    ("qpsk", "2/3"): 9.0,
    ("16psk", "1/2"): 16.5,
    ("16psk", "2/3"): 18.0,
}


def required_snr_db(config: TagConfig) -> float:
    """Decoding threshold for one operating point.

    Raises
    ------
    ValueError
        If the (modulation, code rate) pair has no calibrated
        threshold, naming the pair and the supported set.
    """
    key = (config.modulation, config.code_rate)
    try:
        return REQUIRED_SNR_DB[key]
    except KeyError:
        supported = ", ".join(
            f"{m}/{r}" for m, r in sorted(REQUIRED_SNR_DB))
        raise ValueError(
            f"no calibrated SNR threshold for modulation="
            f"{config.modulation!r}, code_rate={config.code_rate!r}; "
            f"supported pairs: {supported}"
        ) from None


def robustness_margin_db(config: TagConfig) -> float:
    """How much link headroom an operating point buys, in dB.

    Slower symbol rates integrate more samples per symbol through MRC
    (post-MRC SNR scales with the unguarded samples per symbol), and
    sparser constellations / stronger codes need less SNR -- so the
    margin is the MRC integration gain minus the decoding threshold.
    Relative values order the fallback ladder; absolute values are not
    link budgets.
    """
    sps = config.samples_per_symbol
    guard = min(6, max(sps // 2, 1), sps - 1)
    return 10.0 * math.log10(sps - guard) - required_snr_db(config)


def fallback_ladder(configs: list[TagConfig] | None = None
                    ) -> list[TagConfig]:
    """Operating points ordered from fastest to most robust.

    The default ladder keeps symbol rates >= 100 kHz: the 10 kHz point
    is so slow that a single fragment no longer fits in one excitation
    packet, which makes it useless as an ARQ fallback.
    """
    if configs is None:
        configs = [c for c in all_tag_configs()
                   if c.symbol_rate_hz >= 100e3]
    return sorted(configs, key=robustness_margin_db)


def step_down(config: TagConfig,
              configs: list[TagConfig] | None = None) -> TagConfig | None:
    """The next more-robust rung below ``config`` on the ladder.

    Returns ``None`` from the most robust rung (the caller has run out
    of rate fallbacks and must escalate differently, e.g. by extending
    the tag preamble).
    """
    current = robustness_margin_db(config)
    for candidate in fallback_ladder(configs):
        if robustness_margin_db(candidate) > current + 1e-9:
            return candidate
    return None


def most_robust_config(configs: list[TagConfig] | None = None) -> TagConfig:
    """The ladder's terminal rung (largest robustness margin)."""
    return fallback_ladder(configs)[-1]


@dataclass(frozen=True)
class RateChoice:
    """A selected operating point with its predicted cost."""

    config: TagConfig
    repb: float
    throughput_bps: float
    fallback: bool = False
    """True when no operating point was actually feasible and the
    selector fell back to the most robust rung instead of giving up."""


def feasible_configs(snr_db_for: "callable",
                     configs: list[TagConfig] | None = None) -> list[TagConfig]:
    """All operating points whose predicted SNR clears the threshold.

    ``snr_db_for`` maps a :class:`TagConfig` to a predicted post-MRC
    symbol SNR (e.g. from :class:`repro.link.LinkBudget`).
    """
    configs = configs if configs is not None else all_tag_configs()
    return [c for c in configs if snr_db_for(c) >= required_snr_db(c)]


def select_config(snr_db_for: "callable", *,
                  min_throughput_bps: float = 0.0,
                  configs: list[TagConfig] | None = None,
                  energy_model: EnergyModel | None = None,
                  fallback_most_robust: bool = False) -> RateChoice | None:
    """Lowest-REPB feasible point meeting a throughput floor.

    With ``fallback_most_robust=True``, an empty feasible set returns
    the ladder's most robust operating point flagged as a fallback
    instead of ``None`` -- a degraded link keeps limping along at the
    safest rung rather than going silent.
    """
    model = energy_model or default_energy_model()
    best: RateChoice | None = None
    for cfg in feasible_configs(snr_db_for, configs):
        if cfg.throughput_bps < min_throughput_bps:
            continue
        choice = RateChoice(
            config=cfg, repb=model.repb(cfg),
            throughput_bps=cfg.throughput_bps,
        )
        if best is None or choice.repb < best.repb:
            best = choice
    if best is None and fallback_most_robust:
        cfg = most_robust_config(configs)
        best = RateChoice(
            config=cfg, repb=model.repb(cfg),
            throughput_bps=cfg.throughput_bps,
            fallback=True,
        )
    return best


def max_throughput_config(snr_db_for: "callable", *,
                          configs: list[TagConfig] | None = None,
                          energy_model: EnergyModel | None = None
                          ) -> RateChoice | None:
    """Highest-throughput feasible point (REPB breaks ties)."""
    model = energy_model or default_energy_model()
    best: RateChoice | None = None
    for cfg in feasible_configs(snr_db_for, configs):
        choice = RateChoice(
            config=cfg, repb=model.repb(cfg),
            throughput_bps=cfg.throughput_bps,
        )
        if best is None or choice.throughput_bps > best.throughput_bps or (
            choice.throughput_bps == best.throughput_bps
            and choice.repb < best.repb
        ):
            best = choice
    return best
