"""Multi-antenna BackFi reader (the paper's Sec. 7 future work).

"BackFi's range and throughput can be enhanced further with the use of
multiple antennas at the WiFi APs since multiple antennas at the AP
provides additional diversity combining gain. ... We can then perform
MRC combining for the signals received across space from multiple
antennas, providing BackFi with better SNR."

This module implements exactly that: the AP transmits from one antenna
(no protocol change for the tag) and receives on ``n_antennas`` chains,
each with its own self-interference channel, cancellation pass and
combined-channel estimate; the decoder then maximum-ratio combines
across *time and space*:

``theta_hat = sum_a sum_n y_a[n] yhat_a[n]* / sum_a sum_n |yhat_a[n]|^2``
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..channel.environment import Scene, SceneConfig
from ..channel.hardware import PaNonlinearity, coherence_impairment
from ..channel.multipath import apply_channel
from ..channel.noise import awgn
from ..constants import (
    BACKSCATTER_EVM_COHERENCE_US,
    BACKSCATTER_EVM_RMS,
    SAMPLES_PER_US,
)
from ..link.protocol import build_ap_transmission
from ..tag.config import TagConfig
from ..tag.tag import BackFiTag
from .cancellation import SelfInterferenceCanceller
from .decoder import TagDecodeOutput, decode_tag_symbols
from .mrc import expected_template
from .reader import BackFiReader
from .sync import find_tag_timing

__all__ = ["MimoScene", "MimoResult", "MimoBackFiReader", "run_mimo_session"]


@dataclass
class MimoScene:
    """One forward channel plus per-receive-antenna backward channels."""

    base: Scene
    h_b: list[np.ndarray] = field(repr=False, default_factory=list)
    h_env: list[np.ndarray] = field(repr=False, default_factory=list)

    @property
    def n_antennas(self) -> int:
        """Receive chains at the AP."""
        return len(self.h_b)

    @classmethod
    def build(cls, n_antennas: int, *, tag_distance_m: float,
              config: SceneConfig | None = None,
              rng: np.random.Generator | None = None) -> "MimoScene":
        """Draw one forward channel and independent per-antenna returns."""
        if n_antennas < 1:
            raise ValueError("need at least one antenna")
        rng = rng or np.random.default_rng()
        base = Scene.build(tag_distance_m=tag_distance_m, config=config,
                           rng=rng)
        h_b = [base.h_b]
        h_env = [base.h_env]
        for _ in range(n_antennas - 1):
            extra = Scene.build(tag_distance_m=tag_distance_m,
                                config=config, rng=rng)
            h_b.append(extra.h_b)
            h_env.append(extra.h_env)
        return cls(base=base, h_b=h_b, h_env=h_env)


@dataclass
class MimoResult:
    """Joint-decode outcome plus per-antenna diagnostics."""

    ok: bool
    payload_bits: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint8), repr=False
    )
    symbol_snr_db: float = float("nan")
    per_antenna_snr_db: list[float] = field(default_factory=list)
    decode: TagDecodeOutput | None = None


class MimoBackFiReader:
    """Spatial+temporal MRC decoding across several receive chains."""

    def __init__(self, tag_config: TagConfig | None = None, *,
                 n_channel_taps: int = 8):
        self.tag_config = tag_config or TagConfig()
        self.n_channel_taps = n_channel_taps

    def decode(self, timeline, rx_list: list[np.ndarray],
               scene: MimoScene, *,
               pa_output: np.ndarray | None = None,
               rng: np.random.Generator | None = None) -> MimoResult:
        """Cancel/estimate per antenna, then combine across all chains."""
        x = timeline.samples if pa_output is None else \
            np.asarray(pa_output, dtype=np.complex128)
        silent = BackFiReader.silent_rows(timeline)

        per_ant = []
        snrs = []
        for a, rx in enumerate(rx_list):
            canc = SelfInterferenceCanceller().cancel(
                x, np.asarray(rx, dtype=np.complex128),
                scene.h_env[a], silent, rng=rng,
            )
            cleaned = canc.cleaned
            held_out = silent[(3 * silent.size) // 4:]
            floor = float(np.mean(np.abs(cleaned[held_out]) ** 2))
            try:
                sync = find_tag_timing(
                    x, cleaned, timeline.nominal_preamble_start,
                    timeline.preamble_us, n_taps=self.n_channel_taps,
                )
            except ValueError:
                continue
            template = expected_template(x, sync.estimate.h_fb,
                                         cleaned.size)
            per_ant.append((cleaned, template, floor, sync))
        if not per_ant:
            return MimoResult(ok=False)

        # Use a common timing reference: the earliest antenna's sync
        # start (they share the tag, so offsets agree within a sample).
        sps = self.tag_config.samples_per_symbol
        data_start = min(p[3].preamble_start for p in per_ant) + \
            int(timeline.preamble_us * SAMPLES_PER_US)
        n_symbols = (timeline.wifi_end - data_start) // sps
        if n_symbols < 1:
            return MimoResult(ok=False)
        guard = min(6, max(sps // 2, 1), sps - 1)

        num = np.zeros(int(n_symbols), dtype=np.complex128)
        den = np.zeros(int(n_symbols))
        noise_acc = np.zeros(int(n_symbols))
        span = slice(data_start, data_start + int(n_symbols) * sps)
        for cleaned, template, floor, _sync in per_ant:
            y_blk = cleaned[span].reshape(int(n_symbols), sps)[:, guard:]
            t_blk = template[span].reshape(int(n_symbols), sps)[:, guard:]
            # Whiten each antenna by its own noise floor before combining.
            w = 1.0 / max(floor, 1e-30)
            num += w * np.sum(y_blk * np.conj(t_blk), axis=1)
            energy = np.sum(np.abs(t_blk) ** 2, axis=1)
            den += w * energy
            noise_acc += w * energy  # var of num = sum w * energy
            snrs.append(float(10 * np.log10(
                max(np.mean(energy) / floor, 1e-30))))
        den = np.maximum(den, 1e-30)
        symbols = num / den
        noise_var = noise_acc / den ** 2

        decode = decode_tag_symbols(symbols, noise_var, self.tag_config)
        good = noise_var > 0
        snr = float(10 * np.log10(max(np.mean(
            np.abs(symbols[good]) ** 2 / noise_var[good]), 1e-30)))
        return MimoResult(
            ok=decode.ok,
            payload_bits=decode.payload_bits,
            symbol_snr_db=snr,
            per_antenna_snr_db=snrs,
            decode=decode,
        )


def run_mimo_session(scene: MimoScene, tag: BackFiTag,
                     reader: MimoBackFiReader, *,
                     payload_bits: np.ndarray | None = None,
                     n_payload_bits: int = 1000,
                     wifi_rate_mbps: int = 24,
                     wifi_payload_bytes: int = 1500,
                     backscatter_evm: float = BACKSCATTER_EVM_RMS,
                     pa: PaNonlinearity | None = PaNonlinearity(),
                     rng: np.random.Generator | None = None) -> MimoResult:
    """End-to-end exchange with a multi-antenna reader."""
    rng = rng or np.random.default_rng()
    base = scene.base
    from ..wifi.frames import random_payload

    timeline = build_ap_transmission(
        random_payload(wifi_payload_bytes, rng), wifi_rate_mbps,
        tag_id=tag.tag_id, preamble_us=tag.preamble_us,
        tx_power_mw=base.tx_power_mw,
    )
    x = timeline.samples
    x_pa = pa.apply(x) if pa is not None else x

    if payload_bits is None:
        payload_bits = rng.integers(0, 2, size=n_payload_bits,
                                    dtype=np.uint8)
    tag.queue_data(payload_bits)
    z_tag = apply_channel(base.h_f, x_pa)
    plan = tag.backscatter(z_tag, wake_index=timeline.wifi_start)
    reflected = z_tag * plan.reflection
    if backscatter_evm > 0:
        reflected = reflected * coherence_impairment(
            reflected.size, backscatter_evm,
            BACKSCATTER_EVM_COHERENCE_US * SAMPLES_PER_US, rng,
        )

    rx_list = []
    for a in range(scene.n_antennas):
        y = apply_channel(scene.h_env[a], x_pa)
        y = y + apply_channel(scene.h_b[a], reflected)
        y = y + awgn(x.size, base.noise_floor_mw, rng)
        rx_list.append(y)

    return reader.decode(timeline, rx_list, scene, pa_output=x_pa, rng=rng)
