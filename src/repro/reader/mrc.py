"""Maximal-ratio combining decoder core (paper Sec. 4.3.2, Eq. 7).

The tag symbol period (8-2000 samples) is much longer than the combined
channel (a handful of taps), so within one symbol -- after a guard of
channel-length samples at the boundary -- the received signal is

``y[n] = e^{j theta_c} (x * h_fb)[n] + noise``.

MRC combines the samples of each symbol weighted by the known template
``yhat = x * h_fb``:

``theta_hat_c = sum(y yhat*) / sum(|yhat|^2)``

which is the ML estimate of the constant phase and yields an SNR gain
equal to the per-symbol template energy over the noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dsp.fastpath import fast_convolve
from ..telemetry import get_collector

__all__ = ["MrcOutput", "mrc_combine", "expected_template"]


def expected_template(x: np.ndarray, h_fb: np.ndarray,
                      n_out: int) -> np.ndarray:
    """``yhat[n] = (x * h_fb)[n]``: the unmodulated backscatter replica."""
    return fast_convolve(x, h_fb)[:n_out]


@dataclass
class MrcOutput:
    """Per-symbol combined statistics."""

    symbols: np.ndarray = field(repr=False)
    noise_var: np.ndarray = field(repr=False)
    template_energy: np.ndarray = field(repr=False)

    @property
    def n_symbols(self) -> int:
        """Number of combined tag symbols (per batch element)."""
        return int(self.symbols.shape[-1]) if self.symbols.ndim \
            else int(self.symbols.size)

    def mean_snr_db(self) -> float:
        """Average post-MRC symbol SNR in dB (NaN when unmeasurable).

        With no positive noise-variance estimate there is no SNR to
        report; NaN propagates honestly through downstream statistics
        (``np.isfinite`` filters, table dashes) where ``+inf`` would
        masquerade as a perfect link.
        """
        good = self.noise_var > 0
        if not np.any(good):
            return float("nan")
        snr = np.mean(np.abs(self.symbols[good]) ** 2 / self.noise_var[good])
        return float(10.0 * np.log10(max(snr, 1e-30)))


def mrc_combine(
    y_clean: np.ndarray,
    template: np.ndarray,
    data_start: int,
    samples_per_symbol: int,
    n_symbols: int,
    *,
    guard: int = 8,
    noise_floor: float = 0.0,
) -> MrcOutput:
    """Combine each tag symbol's samples into one complex statistic.

    Parameters
    ----------
    y_clean:
        Post-cancellation received signal.
    template:
        ``x * h_fb`` replica aligned with ``y_clean``.
    data_start:
        Index of the first payload symbol's first sample.
    samples_per_symbol / n_symbols:
        Tag symbol geometry.
    guard:
        Samples ignored at the start of each symbol (channel transient
        across the phase switch -- "sample ignored" in paper Fig. 6).
    noise_floor:
        Per-sample noise power; used to report the per-symbol noise
        variance of the combined statistic for soft decoding.  When zero,
        the per-sample noise power is inferred per packet from the
        post-combine residuals (relative LLR scaling still correct).
    """
    tm = get_collector()
    with tm.span("mrc") as sp:
        out = _mrc_combine(y_clean, template, data_start,
                           samples_per_symbol, n_symbols,
                           guard=guard, noise_floor=noise_floor)
        if tm.enabled:
            sp.probe("n_symbols", out.n_symbols)
            sp.probe("samples_per_symbol", samples_per_symbol)
            sp.probe("guard", guard)
            sp.probe("mean_snr_db", out.mean_snr_db())
            sp.probe("mean_template_energy",
                     float(np.mean(out.template_energy)))
        return out


def _mrc_combine(
    y_clean: np.ndarray,
    template: np.ndarray,
    data_start: int,
    samples_per_symbol: int,
    n_symbols: int,
    *,
    guard: int,
    noise_floor: float,
) -> MrcOutput:
    y_clean = np.asarray(y_clean, dtype=np.complex128)
    template = np.asarray(template, dtype=np.complex128)
    if samples_per_symbol <= guard:
        raise ValueError(
            f"symbol of {samples_per_symbol} samples has no room after "
            f"a {guard}-sample guard"
        )
    end_needed = data_start + n_symbols * samples_per_symbol
    if end_needed > y_clean.shape[-1] or end_needed > template.shape[-1]:
        raise ValueError("signal shorter than the requested symbol span")

    # Leading axes (if any) are batch axes: a stack of captures sharing
    # one symbol geometry, combined in a single pass.
    batch = np.broadcast_shapes(y_clean.shape[:-1], template.shape[:-1])
    blk = (n_symbols, samples_per_symbol)
    span_len = end_needed - data_start
    y_blk = np.broadcast_to(
        y_clean[..., data_start:end_needed],
        batch + (span_len,)).reshape(batch + blk)
    t_blk = np.broadcast_to(
        template[..., data_start:end_needed],
        batch + (span_len,)).reshape(batch + blk)
    y_use = y_blk[..., guard:]
    t_use = t_blk[..., guard:]

    energy = np.sum(np.abs(t_use) ** 2, axis=-1)
    energy = np.maximum(energy, 1e-30)
    combined = np.sum(y_use * np.conj(t_use), axis=-1) / energy
    # Var of combined statistic: sigma^2 * sum|t|^2 / (sum|t|^2)^2.
    noise_floor_arr = np.asarray(noise_floor, dtype=np.float64)
    if noise_floor_arr.ndim == 0 and not batch:
        scalar_floor = float(noise_floor_arr)
        if scalar_floor > 0:
            noise_var = scalar_floor / energy
        else:
            # No measured floor: infer the per-sample noise power from
            # the post-combine residuals.  Each symbol's fit consumes one
            # complex degree of freedom (the phase estimate), hence the
            # m-1 divisor.
            resid = y_use - combined[..., None] * t_use
            m = y_use.shape[-1]
            sigma2 = float(np.sum(np.abs(resid) ** 2)) \
                / (n_symbols * max(m - 1, 1))
            noise_var = sigma2 / energy
    else:
        # Batched: a per-element floor (scalar broadcasts), with the
        # residual-inference fallback applied per element exactly as the
        # scalar path would.
        floor = np.broadcast_to(noise_floor_arr, batch)
        resid = y_use - combined[..., None] * t_use
        m = y_use.shape[-1]
        sigma2 = np.sum(np.abs(resid) ** 2, axis=(-2, -1)) \
            / (n_symbols * max(m - 1, 1))
        per_sample = np.where(floor > 0, floor, sigma2)
        noise_var = per_sample[..., None] / energy
    return MrcOutput(
        symbols=combined,
        noise_var=noise_var,
        template_energy=energy,
    )
