"""Batched decode of many backscatter exchanges against one excitation.

A dense BackFi deployment decodes the same excitation against many
received signals (one per responding tag placement): the AP transmits
once, and every exchange in the round shares ``timeline.samples``.  The
per-exchange pipeline (:meth:`BackFiReader.decode`) then repeats a lot
of excitation-only work per element -- the digital canceller's Gram
matrix, the sync sweep's correlation tables and Gram factorisations,
the Viterbi trellis' per-step Python dispatch.

:class:`BatchedDecoder` runs the identical pipeline once over a whole
stack of exchanges:

* analog cancellation keeps the per-element error draws (each element's
  generator stream is untouched), but everything downstream shares the
  excitation-side factorisations;
* digital cancellation trains all elements through **one** convolution
  matrix / Gram factorisation and a multi-RHS solve;
* the fine-timing sweep scores the full candidate grid for every
  element through :class:`~repro.reader.fastpath.BatchPreambleSolver`
  (excitation tables and Gram LU shared), then replays
  :func:`~repro.reader.sync.find_tag_timing`'s coarse/refine/walk
  selection per element on the precomputed metric table;
* the reference channel estimate, MRC, soft demap and Viterbi decode
  run batched, grouped by winning preamble start (one group in the
  common case).

Equivalence contract: every element's result matches a standalone
``reader.decode`` call to float64 rounding -- decoded bits and ok flags
exactly, float diagnostics to rtol ``1e-10`` (the only differences come
from BLAS summation-order changes around 1e-15).  Elements whose first
pass fails a recoverable failure fall back to the per-exchange recovery
ladder with their generator rewound, so even the escalation path is
byte-identical to the loop.  ``tests/test_batch_decode.py`` asserts the
contract over a 100-exchange snapshot.
"""

from __future__ import annotations

import numpy as np

from ..coding.convolutional import CONSTRAINT, _keep_mask
from ..coding.viterbi import viterbi_decode_soft_batch
from ..constants import SAMPLES_PER_US
from ..dsp.fastpath import fast_convolve, stacked_convolve
from ..dsp.measurements import residual_power_db
from ..link.frames import parse_frame_bits
from ..link.protocol import ApTimeline
from ..telemetry import get_collector
from .cancellation import CancellationResult, ls_channel_estimate
from .channel_est import ChannelEstimate, estimate_combined_channel_group
from .decoder import TagDecodeOutput
from .demod import psk_soft_llrs
from .failures import FailureKind, ReaderFailure
from .fastpath import BatchPreambleSolver
from .mrc import MrcOutput, _mrc_combine
from .reader import BackFiReader, ReaderResult
from .sync import SyncResult, replay_offset_selection

__all__ = ["BatchedDecoder"]

_SYNC_STEP = 4
"""Coarse sweep stride; must match find_tag_timing's default."""


def _rng_state(rng: np.random.Generator | None):
    return None if rng is None else rng.bit_generator.state


def _restore_rng(rng: np.random.Generator | None, state) -> None:
    if rng is not None and state is not None:
        rng.bit_generator.state = state


class BatchedDecoder:
    """Vectorised many-exchange decode sharing one reader's pipeline."""

    def __init__(self, reader: BackFiReader):
        self.reader = reader

    def decode_batch(self, timeline: ApTimeline, rx_batch: np.ndarray,
                     h_env_batch, *,
                     pa_output: np.ndarray | None = None,
                     rngs: list[np.random.Generator | None] | None = None,
                     ) -> list[ReaderResult]:
        """Decode every exchange of the batch.

        Parameters mirror :meth:`BackFiReader.decode` with a leading
        batch axis: ``rx_batch`` is ``(n_batch, n_samples)`` aligned
        with ``timeline.samples``, ``h_env_batch`` a sequence of
        per-element self-interference channels, ``rngs`` the
        per-element generators the analog canceller draws its
        component-precision error from (``None`` entries use the
        deterministic default seed, exactly like the scalar path).
        """
        reader = self.reader
        x = timeline.samples if pa_output is None else \
            np.asarray(pa_output, dtype=np.complex128)
        rx = np.asarray(rx_batch, dtype=np.complex128)
        if rx.ndim != 2 or rx.shape[1] != x.size:
            raise ValueError("rx_batch must be (n_batch, len(samples))")
        n_batch = rx.shape[0]
        h_env = [np.asarray(h) for h in h_env_batch]
        if len(h_env) != n_batch:
            raise ValueError("one h_env per batch element required")
        if rngs is None:
            rngs = [None] * n_batch
        if len(rngs) != n_batch:
            raise ValueError("one rng per batch element required")

        tm = get_collector()
        with tm.span("reader.decode_batch") as sp:
            if reader.track_phase:
                # Decision-directed tracking is sequential per symbol;
                # the batch API degrades to the per-exchange loop.
                results = [
                    reader.decode(timeline, rx[b], h_env[b],
                                  pa_output=pa_output, rng=rngs[b])
                    for b in range(n_batch)
                ]
                if tm.enabled:
                    sp.probe("n_batch", n_batch)
                    sp.probe("vectorized", False)
                return results

            states = [_rng_state(r) for r in rngs]
            results = self._decode_batch_single_pass(
                timeline, x, rx, h_env, rngs)
            # Recoverable first-pass failures re-enter the per-exchange
            # escalation ladder with the generator rewound, replaying
            # the (failing) first pass so the stream consumption -- and
            # therefore every later draw -- matches the scalar path.
            n_fallback = 0
            for b, res in enumerate(results):
                if (reader.recovery and not res.ok
                        and res.failure is not None
                        and res.failure.recoverable):
                    _restore_rng(rngs[b], states[b])
                    results[b] = reader._decode_with_recovery(
                        timeline, rx[b], h_env[b],
                        pa_output=pa_output, rng=rngs[b])
                    n_fallback += 1
            if tm.enabled:
                sp.probe("n_batch", n_batch)
                sp.probe("vectorized", True)
                sp.probe("n_ok", sum(1 for r in results if r.ok))
                sp.probe("n_fallback", n_fallback)
            return results

    # -- single pass ---------------------------------------------------

    def _decode_batch_single_pass(self, timeline: ApTimeline,
                                  x: np.ndarray, rx: np.ndarray,
                                  h_env: list[np.ndarray],
                                  rngs) -> list[ReaderResult]:
        reader = self.reader
        canceller = reader.canceller
        n_batch, n = rx.shape
        silent = reader.silent_rows(timeline)

        # 1. self-interference cancellation (per-element analog error
        # draws, shared digital Gram).  The board-tap draws happen per
        # element in generator order; the excitation convolution then
        # runs once for the whole tap stack (trailing zero-padding of
        # shorter tap vectors convolves to exact zeros).
        if canceller.analog_enabled:
            taps = [canceller.analog.tuned_taps(h_env[b], rng=rngs[b])
                    for b in range(n_batch)]
            width = max(t.size for t in taps)
            tap_stack = np.zeros((n_batch, width), dtype=np.complex128)
            for b, t in enumerate(taps):
                tap_stack[b, : t.size] = t
            after_analog = rx - stacked_convolve(x, tap_stack)[..., :n]
        else:
            after_analog = rx.copy()
        analog_db = [
            residual_power_db(rx[b, silent], after_analog[b, silent])
            for b in range(n_batch)
        ]

        quantized = np.empty_like(rx)
        saturated = np.empty(n_batch, dtype=bool)
        for b in range(n_batch):
            adc = canceller.adc.for_signal(after_analog[b])
            quantized[b] = adc.quantize(after_analog[b])
            saturated[b] = bool(
                np.max(np.abs(after_analog[b].real)) > adc.full_scale
                or np.max(np.abs(after_analog[b].imag)) > adc.full_scale
            )

        split = (3 * silent.size) // 4
        train_rows = silent[:split]
        eval_rows = silent[split:]
        if canceller.digital_enabled:
            cleaned = self._digital_cancel_batch(
                x, quantized, canceller.digital, train_rows)
        else:
            cleaned = quantized
        cancs = [
            CancellationResult(
                cleaned=cleaned[b],
                analog_residual_db=analog_db[b],
                digital_residual_db=residual_power_db(
                    quantized[b, eval_rows], cleaned[b, eval_rows]),
                total_depth_db=residual_power_db(
                    rx[b, eval_rows], cleaned[b, eval_rows]),
                adc_saturated=bool(saturated[b]),
            )
            for b in range(n_batch)
        ]
        held_out = silent[(3 * silent.size) // 4:]
        noise_floor = np.mean(np.abs(cleaned[:, held_out]) ** 2, axis=1)

        # 2. fine timing: score the full candidate grid for every
        # element at once, then replay the scalar selection walk on the
        # metric table.
        results: list[ReaderResult | None] = [None] * n_batch
        search = int(reader.sync_search_us * SAMPLES_PER_US)
        step = _SYNC_STEP
        n_taps = reader.n_channel_taps
        nominal = timeline.nominal_preamble_start
        window = (nominal - search - step,
                  nominal + search + n_taps + 2 * step)
        solver = BatchPreambleSolver(
            x, cleaned, timeline.preamble_us, n_taps=n_taps,
            preamble_seed=reader.preamble_seed, start_window=window)
        grid = np.arange(-search - step + 1,
                         search + n_taps + 2 * step + 1)
        feasible, resid_p, gain = solver.evaluate(nominal + grid)
        pen = 1.0 + 0.005 * np.abs(grid).astype(np.float64)
        with np.errstate(invalid="ignore"):
            metric = resid_p / gain * pen[None, :]
        grid0 = int(grid[0])

        groups: dict[int, list[int]] = {}
        for b in range(n_batch):
            best = replay_offset_selection(feasible[b], metric[b], grid0,
                                           search, step, n_taps)
            if best is None:
                results[b] = ReaderResult(
                    ok=False, cancellation=cancs[b],
                    noise_floor_mw=float(noise_floor[b]),
                    failure=ReaderFailure(
                        FailureKind.SYNC,
                        "no feasible timing offset found"),
                )
            else:
                groups.setdefault(best[1], []).append(b)

        # 3.-4. per winning offset: reference estimate, MRC, decode.
        sps = reader.tag_config.samples_per_symbol
        for off, idxs in groups.items():
            start = nominal + off
            ests = estimate_combined_channel_group(
                x, cleaned[np.asarray(idxs)], start, timeline.preamble_us,
                n_taps=n_taps, preamble_seed=reader.preamble_seed)
            penalty = 1.0 + 0.005 * abs(off)
            syncs = [
                SyncResult(
                    preamble_start=start, offset_samples=off,
                    estimate=est,
                    metric=est.residual_power
                    / max(est.gain, 1e-300) * penalty,
                )
                for est in ests
            ]
            data_start = start + int(timeline.preamble_us
                                     * SAMPLES_PER_US)
            n_symbols = (timeline.wifi_end - data_start) // sps
            if n_symbols < 1:
                for j, b in enumerate(idxs):
                    results[b] = ReaderResult(
                        ok=False, cancellation=cancs[b], sync=syncs[j],
                        channel=ests[j],
                        noise_floor_mw=float(noise_floor[b]),
                        failure=ReaderFailure(
                            FailureKind.NO_CAPACITY,
                            "no room for payload symbols"),
                    )
                continue
            mrcs = self._mrc_group(x, cleaned, idxs, ests, data_start,
                                   sps, int(n_symbols), noise_floor)
            decodes = self._decode_group(mrcs)
            for j, b in enumerate(idxs):
                decode = decodes[j]
                ok = decode.ok
                failure = None
                if not ok:
                    failure = BackFiReader._classify_crc_failure(
                        cancs[b], float(noise_floor[b]))
                results[b] = ReaderResult(
                    ok=ok,
                    payload_bits=decode.payload_bits,
                    n_symbols=int(n_symbols),
                    symbol_snr_db=mrcs[j].mean_snr_db(),
                    noise_floor_mw=float(noise_floor[b]),
                    cancellation=cancs[b],
                    sync=syncs[j],
                    channel=ests[j],
                    mrc=mrcs[j],
                    decode=decode,
                    failure=failure,
                )
        return results

    # -- stage helpers -------------------------------------------------

    @staticmethod
    def _digital_cancel_batch(x: np.ndarray, quantized: np.ndarray,
                              digital, train_rows: np.ndarray
                              ) -> np.ndarray:
        """All elements' digital cancellation off one Gram factorisation.

        Mirrors ``DigitalCanceller.cancel`` per element by calling
        :func:`ls_channel_estimate` with the quantized captures stacked
        as multi-RHS columns: the method resolution (``"auto"`` ->
        normal equations for the overdetermined silent fit), the ridge
        and the singular-Gram SVD fallback are the scalar path's own
        code, so every element's taps match its scalar fit to float64
        rounding while the design matrix is factored exactly once.
        """
        n = quantized.shape[1]
        h_all = ls_channel_estimate(x, quantized, digital.n_taps,
                                    rows=train_rows, method=digital.method)
        return quantized - stacked_convolve(x, h_all)[..., :n]

    def _mrc_group(self, x: np.ndarray, cleaned: np.ndarray,
                   idxs: list[int], ests: list[ChannelEstimate],
                   data_start: int, sps: int, n_symbols: int,
                   noise_floor: np.ndarray) -> list[MrcOutput]:
        guard = min(6, max(sps // 2, 1), sps - 1)
        span0 = data_start
        span1 = data_start + n_symbols * sps
        n_taps = ests[0].h_fb.size
        # Template on the payload span only, one GEMM for the group:
        # T[j, i] = sum_k h[j, k] x[span0 + i - k].
        xs = np.empty((n_taps, span1 - span0), dtype=np.complex128)
        for k in range(n_taps):
            xs[k] = x[span0 - k: span1 - k]
        h_mat = np.stack([est.h_fb for est in ests], axis=0)
        template = h_mat @ xs                            # (n_group, span)

        floors = np.asarray([float(noise_floor[b]) for b in idxs])
        if np.all(floors > 0):
            # One batched combine over the payload span (the span-only
            # template is already aligned, so data_start becomes 0).
            out = _mrc_combine(
                cleaned[np.asarray(idxs), span0:span1], template, 0, sps,
                n_symbols, guard=guard, noise_floor=floors)
            return [
                MrcOutput(symbols=out.symbols[j],
                          noise_var=out.noise_var[j],
                          template_energy=out.template_energy[j])
                for j in range(len(idxs))
            ]
        # Zero measured floor somewhere: the scalar path infers the
        # noise from post-combine residuals; run it verbatim per element.
        outs = []
        for j, b in enumerate(idxs):
            full_template = fast_convolve(
                x, ests[j].h_fb)[: cleaned.shape[1]]
            outs.append(_mrc_combine(
                cleaned[b], full_template, data_start, sps,
                n_symbols, guard=guard, noise_floor=float(noise_floor[b])))
        return outs

    def _decode_group(self, mrcs: list[MrcOutput]) -> list[TagDecodeOutput]:
        cfg = self.reader.tag_config
        symbols = np.stack([m.symbols for m in mrcs], axis=0)
        noise_var = np.stack([m.noise_var for m in mrcs], axis=0)
        llrs = psk_soft_llrs(symbols, cfg.modulation, noise_var)
        length = llrs.shape[1]
        if cfg.code_rate == "1/2":
            mother = llrs[:, : length - (length % 2)]
        else:
            n_coded = length - (length % 3)
            n_mother = n_coded // 3 * 4
            keep = _keep_mask(cfg.code_rate, n_mother)
            mother = np.zeros((len(mrcs), n_mother))
            mother[:, keep] = llrs[:, :n_coded]
        if mother.shape[1] < 2 * CONSTRAINT:
            return [
                TagDecodeOutput(frame=None,
                                decoded_bits=np.empty(0, dtype=np.uint8),
                                llrs=llrs[j])
                for j in range(len(mrcs))
            ]
        decoded = viterbi_decode_soft_batch(mother, terminated=False)
        return [
            TagDecodeOutput(frame=parse_frame_bits(decoded[j]),
                            decoded_bits=decoded[j], llrs=llrs[j])
            for j in range(len(mrcs))
        ]


