"""The BackFi AP/reader: cancellation, sync, MRC decoding, rate adaptation."""

from .cancellation import (
    AnalogCanceller,
    CancellationResult,
    DigitalCanceller,
    SelfInterferenceCanceller,
    convolution_matrix,
    ls_channel_estimate,
)
from .channel_est import ChannelEstimate, estimate_combined_channel
from .decoder import TagDecodeOutput, decode_tag_symbols
from .demod import estimate_symbol_noise, psk_hard_bits, psk_soft_llrs
from .diagnostics import LinkDiagnosis, StageReport, diagnose
from .failures import FailureKind, ReaderFailure
from .mrc import MrcOutput, expected_template, mrc_combine
from .rate_adapt import (
    REQUIRED_SNR_DB,
    RateChoice,
    fallback_ladder,
    feasible_configs,
    max_throughput_config,
    most_robust_config,
    required_snr_db,
    robustness_margin_db,
    select_config,
    step_down,
)
from .config import ReaderConfig
from .mimo import MimoBackFiReader, MimoResult, MimoScene, run_mimo_session
from .reader import BackFiReader, ReaderResult
from .batch import BatchedDecoder
from .sync import SyncResult, find_tag_timing
from .tracking import TrackingResult, phase_track

__all__ = [
    "AnalogCanceller",
    "CancellationResult",
    "DigitalCanceller",
    "SelfInterferenceCanceller",
    "convolution_matrix",
    "ls_channel_estimate",
    "ChannelEstimate",
    "estimate_combined_channel",
    "TagDecodeOutput",
    "decode_tag_symbols",
    "estimate_symbol_noise",
    "psk_hard_bits",
    "psk_soft_llrs",
    "LinkDiagnosis",
    "StageReport",
    "diagnose",
    "FailureKind",
    "ReaderFailure",
    "MrcOutput",
    "expected_template",
    "mrc_combine",
    "REQUIRED_SNR_DB",
    "RateChoice",
    "fallback_ladder",
    "feasible_configs",
    "max_throughput_config",
    "most_robust_config",
    "required_snr_db",
    "robustness_margin_db",
    "select_config",
    "step_down",
    "BackFiReader",
    "BatchedDecoder",
    "ReaderConfig",
    "ReaderResult",
    "MimoBackFiReader",
    "MimoResult",
    "MimoScene",
    "run_mimo_session",
    "SyncResult",
    "find_tag_timing",
    "TrackingResult",
    "phase_track",
]
