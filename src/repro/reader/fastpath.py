"""Batched normal-equation solver for the fine-timing search.

The direct form of :func:`repro.reader.sync.find_tag_timing` re-runs a
full SVD least-squares fit (:func:`estimate_combined_channel`) at every
candidate offset -- dozens of independent ``lstsq`` calls per frame,
each of which also reconstructs the excitation over the *whole* packet
just to score a few hundred preamble rows.

This module removes the redundancy.  For a candidate preamble start
``s`` the LS problem is ``min_h ||y_s - A_s h||`` where the rows of
``A_s`` are length-``n_taps`` windows of the (fixed) excitation ``x``
and ``y_s`` is the received signal derotated by the known preamble
chips placed at ``s``.  Two observations make the sweep cheap:

* The Gram matrix ``A_s^H A_s`` is Toeplitz up to chip-boundary terms:
  entry ``(k, l)`` is a partial sum of the lag-``(k-l)`` sample
  autocorrelation of ``x`` over the row windows.  Precomputing one
  cumulative lag-autocorrelation table per lag (``n_taps`` cumsums over
  the packet, done **once**) turns every per-offset Gram -- boundary
  terms included, so the result is *exact* -- into a handful of table
  lookups.
* The right-hand side ``A_s^H y_s`` is a chip-weighted partial sum of
  the lag-``k`` cross-correlation between ``x`` and ``y``; one more set
  of ``n_taps`` cumulative tables serves every offset.

All candidate offsets are then solved in a single batched Hermitian
solve of ``n_taps x n_taps`` ridge-regularised normal equations, and
the LS residual falls out algebraically (``||y||^2 - Re(b^H h) -
lam^2 ||h||^2``) without ever reconstructing the packet.  The metric
agrees with the direct form to float64 rounding, and
``tests/test_fastpath.py`` asserts both paths pick the identical offset
on the tier-1 scenarios.
"""

from __future__ import annotations

import numpy as np

from ..constants import SAMPLES_PER_US
from ..dsp.backends import get_kernel
from ..tag.tag import PREAMBLE_CHIP_US
from ..utils.bits import barker_like_sequence

__all__ = ["PreambleSolver", "BatchPreambleSolver"]

_RIDGE = 1e-3
"""Must match the default of :func:`ls_channel_estimate`, which the
direct path uses -- the two paths solve the same regularised problem."""


def _ridged_gram(p: np.ndarray, tap_shift: np.ndarray,
                 lo: np.ndarray, hi: np.ndarray, n: int,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Per-candidate Gram matrices (ridge folded in) from the lag tables.

    ``p`` holds the cumulative lag-autocorrelation tables of the
    excitation, ``lo``/``hi`` the per-candidate per-chip row bounds in
    table coordinates.  Returns ``(g, lam2)`` with ``g`` of shape
    ``(n_cand, t, t)``.  The excitation is shared by construction, so a
    batch of received signals reuses one call's result for every
    element -- the main saving of :class:`BatchPreambleSolver`.
    """
    t = p.shape[0]
    n_cand = lo.shape[0]
    idx_hi = np.clip(hi[None, :, :] - tap_shift, 0, n)       # (T, S, C)
    idx_lo = np.clip(lo[None, :, :] - tap_shift, 0, n)
    d_axis = np.arange(t)[:, None, None, None]
    val = (p[d_axis, idx_hi[None, ...]]
           - p[d_axis, idx_lo[None, ...]]).sum(axis=3)       # (D, T, S)
    g = np.empty((n_cand, t, t), dtype=np.complex128)
    kk, ll = np.tril_indices(t)
    lower = val[kk - ll, kk, :]                               # (n_pairs, S)
    g[:, kk, ll] = lower.T
    strict = kk != ll
    g[:, ll[strict], kk[strict]] = np.conj(lower[strict]).T

    # Ridge identical to ls_channel_estimate: lam^2 is ridge times the
    # mean column energy (the mean Gram diagonal).
    diag = np.einsum("skk->sk", g).real
    lam2 = _RIDGE * np.maximum(diag.mean(axis=1), 1e-300)
    g[:, np.arange(t), np.arange(t)] += lam2[:, None]
    return g, lam2


class PreambleSolver:
    """Precomputed correlation tables for one (x, y) pair.

    Build once per frame, then call :meth:`evaluate` with batches of
    candidate preamble starts.  Mirrors the feasibility rules of
    :func:`estimate_combined_channel` exactly: a candidate is infeasible
    when it starts before the packet or keeps fewer than ``4 * n_taps``
    in-chip rows after clipping at the packet end.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, preamble_us: float,
                 *, n_taps: int, preamble_seed: int = 0x35,
                 start_window: tuple[int, int] | None = None):
        x = np.asarray(x, dtype=np.complex128)
        y = np.asarray(y, dtype=np.complex128)
        if x.size != y.size:
            raise ValueError("x and y must be the same length")
        n = x.size
        self.n = n
        self.n_taps = n_taps
        sps_chip = int(PREAMBLE_CHIP_US * SAMPLES_PER_US)
        n_chips = int(round(preamble_us / PREAMBLE_CHIP_US))
        self.chips = barker_like_sequence(
            n_chips, seed=preamble_seed).astype(np.complex128)
        # Row windows relative to the preamble start: each chip keeps
        # samples [guard, sps_chip) past its own start, with
        # guard = n_taps skipping the channel transient at phase flips
        # (same rule as _valid_preamble_rows).
        guard = n_taps
        c = np.arange(n_chips)
        self._base_lo = guard + sps_chip * c
        self._base_hi = sps_chip * (c + 1)

        # The tables only need to cover the sample span the candidate
        # starts can touch; a search window of a few microseconds keeps
        # that to a fraction of the packet.
        if start_window is None:
            start_window = (0, n)
        self._start_lo, self._start_hi = start_window
        i0 = max(0, self._start_lo + guard - (n_taps - 1))
        i1 = min(n, self._start_hi + n_chips * sps_chip)
        if i1 < i0:
            i0 = i1
        self._i0, self._i1 = i0, i1
        x = x[i0:i1]
        y = y[i0:i1]
        n = i1 - i0

        xc = np.conj(x)
        # P[d, i] = sum_{m < i} conj(x[m]) x[m+d]: cumulative lag-d
        # autocorrelation of the excitation (Gram-matrix ingredients).
        # The zero-padded tails make out-of-range cumsum entries clamp
        # to the final partial sum automatically.
        prods = np.zeros((n_taps, n), dtype=np.complex128)
        for d in range(n_taps):
            prods[d, : n - d] = xc[: n - d] * x[d:]
        self._p = np.zeros((n_taps, n + 1), dtype=np.complex128)
        np.cumsum(prods, axis=1, out=self._p[:, 1:])
        # S[k, i] = sum_{r < i} conj(x[r-k]) y[r]: cumulative lag-k
        # cross-correlation (right-hand-side ingredients).  Terms with
        # r < k vanish because the convolution matrix zero-pads there.
        for k in range(n_taps):
            prods[k, :] = 0.0
            prods[k, k:] = xc[: n - k] * y[k:]
        self._s = np.zeros((n_taps, n + 1), dtype=np.complex128)
        np.cumsum(prods, axis=1, out=self._s[:, 1:])
        # E[i] = sum_{r < i} |y[r]|^2 for the residual identity.
        self._e = np.concatenate([[0.0], np.cumsum(np.abs(y) ** 2)])
        # Tap-shifted gather indices are shared by every batch: entry
        # [k] of a (T, S, C) index block is clip(bound - k, 0, n).
        self._tap_shift = np.arange(n_taps)[:, None, None]

    def evaluate(self, starts: np.ndarray) -> tuple[
            np.ndarray, np.ndarray, np.ndarray]:
        """Solve the preamble LS fit at every candidate start.

        Returns ``(feasible, residual_power, gain)`` arrays aligned with
        ``starts``; infeasible entries hold NaN metrics.
        """
        starts = np.atleast_1d(np.asarray(starts, dtype=np.intp))
        t = self.n_taps
        i0, i1 = self._i0, self._i1
        n_cand = starts.size
        if starts.size and (starts.min() < self._start_lo
                            or starts.max() > self._start_hi):
            raise ValueError("candidate start outside the solver's "
                             "declared start_window")

        lo = np.clip(starts[:, None] + self._base_lo[None, :], i0, i1)
        hi = np.clip(starts[:, None] + self._base_hi[None, :], i0, i1)
        hi = np.maximum(hi, lo)
        n_rows = (hi - lo).sum(axis=1)
        feasible = (starts >= 0) & (n_rows >= 4 * t)
        # Shift into table coordinates (tables cover [i0, i1]).
        lo = lo - i0
        hi = hi - i0
        n = i1 - i0

        # Right-hand sides: b[s, k] = sum_c conj(p_c) (S_k[hi] - S_k[lo]).
        seg = self._s[:, hi] - self._s[:, lo]          # (T, S, C)
        b = np.einsum("c,ksc->sk", np.conj(self.chips), seg)

        # Exact per-offset Gram matrices from the lag tables.  For
        # d = k - l >= 0: G[s, k, l] = sum_c P_d[hi - k] - P_d[lo - k].
        # One fancy-indexed gather covers every (d, k) pair at once.
        g, lam2 = _ridged_gram(self._p, self._tap_shift, lo, hi, n)

        # Batched Hermitian solve; infeasible candidates get an identity
        # system so one LAPACK call serves the whole batch.
        g[~feasible] = np.eye(t, dtype=np.complex128)
        b_solve = np.where(feasible[:, None], b, 0.0)
        try:
            h = get_kernel("solve")(g, b_solve[..., None])[..., 0]
        except np.linalg.LinAlgError:
            return (np.zeros(n_cand, dtype=bool),
                    np.full(n_cand, np.nan), np.full(n_cand, np.nan))

        gain = np.sum(np.abs(h) ** 2, axis=1)
        ysq = (self._e[hi] - self._e[lo]).sum(axis=1)
        # ||y - A h||^2 on the data rows: with (G + lam^2 I) h = b this
        # collapses to ysq - Re(b^H h) - lam^2 ||h||^2.
        resid = ysq - np.einsum("sk,sk->s", np.conj(b), h).real \
            - lam2 * gain
        resid = np.maximum(resid, 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            residual_power = np.where(n_rows > 0, resid / n_rows, np.nan)
        feasible = feasible & (gain > 0)
        residual_power = np.where(feasible, residual_power, np.nan)
        gain = np.where(feasible, gain, np.nan)
        return feasible, residual_power, gain


class BatchPreambleSolver:
    """Correlation tables for one excitation against a *batch* of rx.

    The fine-timing sweep of a multi-tag round decodes many exchanges
    that share the same excitation ``x`` (the AP transmits once, every
    responder's signal is scored against it).  Everything in the LS
    system that depends only on ``x`` -- the lag-autocorrelation tables,
    every candidate's Gram matrix and its LU factorisation -- is
    computed once here and shared across the batch; only the
    right-hand-side cross-correlation tables and the received-energy
    cumsums are per-element.  One stacked multi-RHS solve then scores
    every (candidate, element) pair.

    Feasibility rules, ridge and residual algebra mirror
    :class:`PreambleSolver` exactly, and the multi-RHS LAPACK solve
    performs the same per-column triangular substitutions as the
    one-element solve, so each element's metrics agree with its own
    :class:`PreambleSolver` to float64 rounding.
    """

    def __init__(self, x: np.ndarray, y_batch: np.ndarray,
                 preamble_us: float, *, n_taps: int,
                 preamble_seed: int = 0x35,
                 start_window: tuple[int, int] | None = None):
        x = np.asarray(x, dtype=np.complex128)
        y = np.asarray(y_batch, dtype=np.complex128)
        if y.ndim != 2 or y.shape[1] != x.size:
            raise ValueError("y_batch must be (n_batch, len(x))")
        n = x.size
        self.n = n
        self.n_batch = y.shape[0]
        self.n_taps = n_taps
        sps_chip = int(PREAMBLE_CHIP_US * SAMPLES_PER_US)
        n_chips = int(round(preamble_us / PREAMBLE_CHIP_US))
        self.chips = barker_like_sequence(
            n_chips, seed=preamble_seed).astype(np.complex128)
        guard = n_taps
        c = np.arange(n_chips)
        self._base_lo = guard + sps_chip * c
        self._base_hi = sps_chip * (c + 1)

        if start_window is None:
            start_window = (0, n)
        self._start_lo, self._start_hi = start_window
        i0 = max(0, self._start_lo + guard - (n_taps - 1))
        i1 = min(n, self._start_hi + n_chips * sps_chip)
        if i1 < i0:
            i0 = i1
        self._i0, self._i1 = i0, i1
        x = x[i0:i1]
        y = y[:, i0:i1]
        n = i1 - i0

        xc = np.conj(x)
        prods = np.zeros((n_taps, n), dtype=np.complex128)
        for d in range(n_taps):
            prods[d, : n - d] = xc[: n - d] * x[d:]
        self._p = np.zeros((n_taps, n + 1), dtype=np.complex128)
        np.cumsum(prods, axis=1, out=self._p[:, 1:])
        # Per-element cross-correlation tables S[k, b, i] and energy
        # cumsums E[b, i]; the only O(batch) part of the build.
        self._s = np.zeros((n_taps, self.n_batch, n + 1),
                           dtype=np.complex128)
        for k in range(n_taps):
            self._s[k, :, k + 1:] = xc[None, : n - k] * y[:, k:]
        np.cumsum(self._s, axis=2, out=self._s)
        self._e = np.zeros((self.n_batch, n + 1))
        np.cumsum(np.abs(y) ** 2, axis=1, out=self._e[:, 1:])
        self._tap_shift = np.arange(n_taps)[:, None, None]

    def evaluate(self, starts: np.ndarray) -> tuple[
            np.ndarray, np.ndarray, np.ndarray]:
        """Score every candidate start for every batch element.

        Returns ``(feasible, residual_power, gain)`` arrays of shape
        ``(n_batch, n_starts)``; infeasible entries hold NaN metrics.
        """
        starts = np.atleast_1d(np.asarray(starts, dtype=np.intp))
        t = self.n_taps
        i0, i1 = self._i0, self._i1
        nb = self.n_batch
        n_cand = starts.size
        if starts.size and (starts.min() < self._start_lo
                            or starts.max() > self._start_hi):
            raise ValueError("candidate start outside the solver's "
                             "declared start_window")

        lo = np.clip(starts[:, None] + self._base_lo[None, :], i0, i1)
        hi = np.clip(starts[:, None] + self._base_hi[None, :], i0, i1)
        hi = np.maximum(hi, lo)
        n_rows = (hi - lo).sum(axis=1)
        geom_feasible = (starts >= 0) & (n_rows >= 4 * t)
        lo = lo - i0
        hi = hi - i0
        n = i1 - i0

        # Right-hand sides per element, accumulated chip by chip to
        # bound the temporary at (T, nb, n_starts).
        b = np.zeros((nb, n_cand, t), dtype=np.complex128)
        for ci in range(self.chips.size):
            seg = self._s[:, :, hi[:, ci]] - self._s[:, :, lo[:, ci]]
            b += np.conj(self.chips[ci]) * seg.transpose(1, 2, 0)

        g, lam2 = _ridged_gram(self._p, self._tap_shift, lo, hi, n)

        g[~geom_feasible] = np.eye(t, dtype=np.complex128)
        b_solve = np.where(geom_feasible[None, :, None], b, 0.0)
        # One stacked solve: candidate s's LU factorisation serves all
        # nb right-hand-side columns.
        try:
            h = get_kernel("solve")(
                g, b_solve.transpose(1, 2, 0)).transpose(2, 0, 1)
        except np.linalg.LinAlgError:
            shape = (nb, n_cand)
            return (np.zeros(shape, dtype=bool),
                    np.full(shape, np.nan), np.full(shape, np.nan))

        gain = np.sum(np.abs(h) ** 2, axis=2)                # (nb, S)
        ysq = (self._e[:, hi] - self._e[:, lo]).sum(axis=2)  # (nb, S)
        resid = ysq - np.einsum("bsk,bsk->bs", np.conj(b), h).real \
            - lam2[None, :] * gain
        resid = np.maximum(resid, 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            residual_power = np.where(n_rows[None, :] > 0,
                                      resid / n_rows[None, :], np.nan)
        feasible = geom_feasible[None, :] & (gain > 0)
        residual_power = np.where(feasible, residual_power, np.nan)
        gain = np.where(feasible, gain, np.nan)
        return feasible, residual_power, gain
