"""Combined forward-backward channel estimation (paper Sec. 4.3.1).

During the tag preamble the reflection phase is a known PN chip sequence
(constant within each 1 us chip).  Away from chip boundaries the received
tag signal is ``y[n] = p[n] * (x * h_fb)[n]`` because the chip phase is
constant over the channel's delay spread; multiplying by ``conj(p[n])``
(chips are +-1) reduces estimation of ``h_fb = h_f * h_b`` to a standard
least-squares problem on the known excitation ``x``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import SAMPLES_PER_US
from ..dsp.fastpath import fast_convolve
from ..tag.tag import PREAMBLE_CHIP_US, tag_preamble_phases
from .cancellation import ls_channel_estimate

__all__ = ["ChannelEstimate", "estimate_combined_channel",
           "estimate_combined_channel_group", "preamble_condition_number"]

_RIDGE = 1e-3
"""Must match :func:`ls_channel_estimate`'s default ridge -- the group
path folds the identical regulariser into its shared Gram matrix."""

DEFAULT_N_TAPS = 8
"""Taps for h_fb: indoor delay spreads of 50-80 ns are 1-2 samples per
link, so the combined channel is comfortably inside 8 taps (400 ns)."""


@dataclass(frozen=True)
class ChannelEstimate:
    """The estimated combined channel and its quality diagnostics."""

    h_fb: np.ndarray
    residual_power: float
    n_rows: int

    @property
    def gain(self) -> float:
        """Total power gain of the estimate."""
        return float(np.sum(np.abs(self.h_fb) ** 2))

    def snr_estimate_db(self) -> float:
        """Implied per-sample backscatter SNR from the LS residual."""
        if self.residual_power <= 0:
            return float("inf")
        return float(10.0 * np.log10(
            max(self.gain, 1e-30) / self.residual_power
        ))


def _valid_preamble_rows(preamble_start: int, n_chips: int,
                         guard: int) -> np.ndarray:
    """Row indices inside chips, skipping ``guard`` samples per boundary."""
    sps_chip = int(PREAMBLE_CHIP_US * SAMPLES_PER_US)
    rows = []
    for c in range(n_chips):
        chip_start = preamble_start + c * sps_chip
        rows.append(np.arange(chip_start + guard, chip_start + sps_chip))
    return np.concatenate(rows)


def preamble_condition_number(
    x: np.ndarray,
    preamble_start: int,
    preamble_us: float,
    *,
    n_taps: int = DEFAULT_N_TAPS,
) -> float:
    """2-norm condition number of the LS design matrix at one timing.

    The design matrix depends only on the excitation ``x`` and the row
    selection, not on the received signal, so this quantifies how well
    the excitation can identify ``h_fb``: wideband WiFi sits near 1-10,
    narrowband excitations (BLE) reach into the thousands and make the
    estimate noise-dominated.  Computed on demand as a telemetry probe
    -- it costs an extra SVD, so callers gate it on
    ``get_collector().enabled``.
    """
    from .cancellation import convolution_matrix

    x = np.asarray(x, dtype=np.complex128)
    n_chips = int(round(preamble_us / PREAMBLE_CHIP_US))
    rows = _valid_preamble_rows(preamble_start, n_chips, n_taps)
    rows = rows[rows < x.size]
    if rows.size < n_taps:
        return float("inf")
    a = convolution_matrix(x, n_taps, rows)
    s = np.linalg.svd(a, compute_uv=False)
    if s.size == 0 or s[-1] <= 0:
        return float("inf")
    return float(s[0] / s[-1])


def estimate_combined_channel(
    x: np.ndarray,
    y_clean: np.ndarray,
    preamble_start: int,
    preamble_us: float,
    *,
    n_taps: int = DEFAULT_N_TAPS,
    preamble_seed: int = 0x35,
) -> ChannelEstimate:
    """LS-estimate ``h_fb`` from the tag preamble region.

    Parameters
    ----------
    x:
        Known transmitted excitation (full packet, 20 Msps).
    y_clean:
        Received signal after self-interference cancellation.
    preamble_start:
        Sample index where the tag preamble begins.
    preamble_us:
        Preamble duration (32 or 96 us).
    """
    x = np.asarray(x, dtype=np.complex128)
    y_clean = np.asarray(y_clean, dtype=np.complex128)
    preamble = tag_preamble_phases(preamble_us, seed=preamble_seed)
    n_chips = int(round(preamble_us / PREAMBLE_CHIP_US))
    guard = n_taps  # skip the channel transient after each phase flip

    rows = _valid_preamble_rows(preamble_start, n_chips, guard)
    rows = rows[rows < y_clean.size]
    if rows.size < 4 * n_taps:
        raise ValueError("preamble too short for channel estimation")

    # Rotate the received samples by the known chip phases so the target
    # becomes a time-invariant convolution of x.
    chip_phase = np.ones(y_clean.size, dtype=np.complex128)
    pre_slice = slice(preamble_start,
                      min(preamble_start + preamble.size, y_clean.size))
    chip_phase[pre_slice] = preamble[: pre_slice.stop - pre_slice.start]
    y_derot = y_clean * np.conj(chip_phase)

    h = ls_channel_estimate(x, y_derot, n_taps, rows=rows)

    recon = fast_convolve(x, h)[: y_clean.size]
    resid = y_derot[rows] - recon[rows]
    residual_power = float(np.mean(np.abs(resid) ** 2))
    return ChannelEstimate(h_fb=h, residual_power=residual_power,
                           n_rows=int(rows.size))


def estimate_combined_channel_group(
    x: np.ndarray,
    y_stack: np.ndarray,
    preamble_start: int,
    preamble_us: float,
    *,
    n_taps: int = DEFAULT_N_TAPS,
    preamble_seed: int = 0x35,
) -> list[ChannelEstimate]:
    """:func:`estimate_combined_channel` for a stack sharing one timing.

    ``y_stack`` is ``(n_group, n)`` -- post-cancellation captures that
    all won the same preamble start against the same excitation ``x``
    (a batched decoder's per-offset group).  The excitation-side work --
    chip derotation geometry, convolution matrix, Gram factorisation --
    is done once; every element is solved as one multi-RHS system
    through the ``"solve"`` backend and matches its scalar call to
    float64 rounding.

    With the fast path globally disabled (``REPRO_FASTPATH=0``), or on a
    singular Gram, each element runs the scalar reference estimator
    instead, preserving the scalar path's exact behaviour.
    """
    from ..dsp.backends import get_kernel
    from ..dsp.fastpath import fastpath_enabled
    from .cancellation import convolution_matrix

    x = np.asarray(x, dtype=np.complex128)
    y_stack = np.asarray(y_stack, dtype=np.complex128)
    if y_stack.ndim != 2 or y_stack.shape[1] != x.size:
        raise ValueError("y_stack must be (n_group, len(x))")
    n = y_stack.shape[1]

    def _scalar_fallback() -> list[ChannelEstimate]:
        return [
            estimate_combined_channel(
                x, y_stack[j], preamble_start, preamble_us,
                n_taps=n_taps, preamble_seed=preamble_seed)
            for j in range(y_stack.shape[0])
        ]

    if not fastpath_enabled():
        # The scalar path would take the SVD solver; run it per element.
        return _scalar_fallback()

    preamble = tag_preamble_phases(preamble_us, seed=preamble_seed)
    n_chips = int(round(preamble_us / PREAMBLE_CHIP_US))
    rows = _valid_preamble_rows(preamble_start, n_chips, n_taps)
    rows = rows[rows < n]
    if rows.size < 4 * n_taps:
        raise ValueError("preamble too short for channel estimation")
    phase = preamble[rows - preamble_start]
    yd = y_stack[:, rows] * np.conj(phase)[None, :]
    a = convolution_matrix(x, n_taps, rows)
    ac = a.conj().T
    g = ac @ a
    col_energy = float(np.mean(g.diagonal().real))
    g.flat[:: n_taps + 1] += _RIDGE * max(col_energy, 1e-300)
    try:
        h = get_kernel("solve")(g, ac @ yd.T)            # (nt, n_group)
    except np.linalg.LinAlgError:
        return _scalar_fallback()
    resid = yd - (a @ h).T
    residual_power = np.mean(np.abs(resid) ** 2, axis=1)
    return [
        ChannelEstimate(h_fb=h[:, j].copy(),
                        residual_power=float(residual_power[j]),
                        n_rows=int(rows.size))
        for j in range(y_stack.shape[0])
    ]
