"""Load and summarise a telemetry run (the ``repro trace`` command).

A run is the JSONL file a :class:`~repro.telemetry.TelemetryCollector`
saved under ``.repro_cache/telemetry/``.  The summary has three parts:

1. a per-stage timing table (count, total/mean wall time, share),
2. a probe digest (last / min / mean / max per probe name),
3. a stage-margin waterfall for the last decode, rendered through the
   same :class:`~repro.reader.diagnostics.LinkDiagnosis` machinery the
   link doctor uses -- so ``repro trace`` and ``diagnose()`` tell the
   same story from the same numbers.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .collector import decode_scalar, default_telemetry_dir

__all__ = ["TraceRun", "load_run", "resolve_run_path", "summarize",
           "stage_timing_table", "probe_digest", "decode_waterfall"]


@dataclass
class TraceRun:
    """One parsed telemetry run."""

    path: Path
    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        """The run's name (filename stem when the meta line is absent)."""
        return str(self.meta.get("run_id", self.path.stem))

    def spans_named(self, name: str) -> list[dict[str, Any]]:
        """All spans with a given stage name, in completion order."""
        return [s for s in self.spans if s["name"] == name]

    def children_of(self, seq: int) -> list[dict[str, Any]]:
        """Direct child spans of the span with sequence number ``seq``."""
        return [s for s in self.spans if s.get("parent_seq") == seq]


def load_run(path: str | Path) -> TraceRun:
    """Parse one JSONL run file (unknown record kinds are ignored)."""
    path = Path(path)
    run = TraceRun(path=path)
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "meta":
                run.meta = record
            elif kind == "span":
                record["probes"] = {
                    k: decode_scalar(v)
                    for k, v in record.get("probes", {}).items()
                }
                run.spans.append(record)
            elif kind == "counter":
                run.counters[record["name"]] = int(record["value"])
    return run


def resolve_run_path(run: str | None,
                     directory: str | Path | None = None) -> Path:
    """Turn a run argument into a file path.

    ``run`` may be an explicit path, a run id (filename stem) under the
    telemetry directory, or ``None`` for the most recently modified run.
    """
    base = Path(directory) if directory is not None \
        else default_telemetry_dir()
    if run:
        direct = Path(run)
        if direct.exists():
            return direct
        candidate = base / f"{run}.jsonl"
        if candidate.exists():
            return candidate
        raise FileNotFoundError(
            f"no telemetry run {run!r} (looked for {direct} and "
            f"{candidate})"
        )
    runs = sorted(base.glob("*.jsonl"),
                  key=lambda p: p.stat().st_mtime)
    if not runs:
        raise FileNotFoundError(
            f"no telemetry runs under {base} -- record one with e.g. "
            "`python -m repro.cli link --telemetry`"
        )
    return runs[-1]


# -- rendering ---------------------------------------------------------------


def _format_table(header: list[str], rows: list[list[str]]) -> str:
    """Minimal aligned text table (left-align first column, right rest)."""
    table = [header] + rows
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]

    def fmt(row: list[str]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        return "  " + "  ".join(cells).rstrip()

    rule = "  " + "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(header), rule] + [fmt(r) for r in rows])


def stage_timing_table(run: TraceRun) -> str:
    """Per-stage wall-time aggregation over every span in the run."""
    order: list[str] = []
    agg: dict[str, list[float]] = {}
    for s in run.spans:
        name = s["name"]
        if name not in agg:
            agg[name] = []
            order.append(name)
        agg[name].append(float(s["wall_s"]))
    top_total = sum(
        float(s["wall_s"]) for s in run.spans
        if s.get("parent_seq") is None
    )
    rows = []
    for name in order:
        walls = agg[name]
        total = sum(walls)
        share = 100.0 * total / top_total if top_total > 0 else 0.0
        rows.append([
            name, str(len(walls)), f"{1e3 * total:.2f}",
            f"{1e3 * total / len(walls):.2f}", f"{share:.1f}%",
        ])
    return _format_table(
        ["stage", "calls", "total ms", "mean ms", "share"], rows)


def probe_digest(run: TraceRun) -> str:
    """Last/min/mean/max of every numeric probe, plus counters."""
    order: list[tuple[str, str]] = []
    values: dict[tuple[str, str], list[float]] = {}
    last: dict[tuple[str, str], Any] = {}
    for s in run.spans:
        for pname, value in s["probes"].items():
            key = (s["name"], pname)
            if key not in values:
                values[key] = []
                order.append(key)
            last[key] = value
            if isinstance(value, (int, float)):
                f = float(value)
                if math.isfinite(f):
                    values[key].append(f)
    rows = []
    for key in order:
        stage, pname = key
        vals = values[key]
        if vals:
            stats = [f"{min(vals):.4g}",
                     f"{sum(vals) / len(vals):.4g}",
                     f"{max(vals):.4g}"]
        else:
            stats = ["-", "-", "-"]
        tail = last[key]
        tail_txt = f"{float(tail):.4g}" \
            if isinstance(tail, (int, float)) else str(tail)
        rows.append([f"{stage}.{pname}", tail_txt, *stats])
    out = _format_table(["probe", "last", "min", "mean", "max"], rows)
    if run.counters:
        lines = [f"  {name} = {value}"
                 for name, value in sorted(run.counters.items())]
        out += "\n\ncounters:\n" + "\n".join(lines)
    return out


def decode_waterfall(run: TraceRun, *, index: int = -1) -> str:
    """Stage-margin waterfall for one ``reader.decode`` span.

    Feeds the decode's child-span probes through
    :func:`repro.reader.diagnostics.diagnose_from_probes`, so the
    verdict logic is shared with the in-process link doctor.
    """
    from ..reader.diagnostics import diagnose_from_probes

    decodes = run.spans_named("reader.decode")
    if not decodes:
        return "no reader.decode spans in this run"
    root = decodes[index]
    stage_probes = {"reader.decode": root["probes"]}
    for child in run.children_of(root["seq"]):
        stage_probes[child["name"]] = child["probes"]
    n = len(decodes)
    which = index % n if n else 0
    head = (f"decode {which + 1}/{n} (span seq {root['seq']}, "
            f"{1e3 * float(root['wall_s']):.2f} ms)")
    return head + "\n" + diagnose_from_probes(stage_probes).format()


def summarize(run: TraceRun) -> str:
    """The full ``repro trace`` report for one run."""
    label = run.meta.get("label") or ""
    head = f"telemetry run {run.run_id}"
    if label:
        head += f" -- {label}"
    head += f"  ({run.path})"
    parts = [
        head,
        "",
        "per-stage timing:",
        stage_timing_table(run),
        "",
        "probes:",
        probe_digest(run),
        "",
        "stage margins (last decode):",
        decode_waterfall(run),
    ]
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.telemetry.trace [run]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="summarise a telemetry run (JSONL)")
    parser.add_argument("run", nargs="?", default=None,
                        help="run id or path (default: latest)")
    parser.add_argument("--dir", default=None,
                        help="telemetry directory to search")
    args = parser.parse_args(argv)
    path = resolve_run_path(args.run, args.dir)
    print(summarize(load_run(path)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
