"""The span/probe collector behind :mod:`repro.telemetry`.

Design constraints, in order:

1. **Zero cost when disabled.**  The default collector is a process-wide
   :class:`NullCollector` singleton whose ``span()`` hands back one shared
   no-op context manager; an instrumented hot path pays a couple of
   attribute lookups and nothing else.  Instrumentation sites that need
   extra computation for a probe (e.g. the channel-estimate condition
   number) must guard it with ``get_collector().enabled``.
2. **No behavioural coupling.**  Telemetry never touches the RNG stream,
   never changes a return value, and never raises into the pipeline --
   a decode with telemetry on is bit-identical to one with it off.
3. **Flat, greppable output.**  One JSONL line per span (plus one meta
   line and one line per counter) under ``.repro_cache/telemetry/``; see
   ``docs/TELEMETRY.md`` for the schema.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "RECORD_VERSION",
    "TELEMETRY_DIR_ENV",
    "NullCollector",
    "Span",
    "TelemetryCollector",
    "count",
    "default_telemetry_dir",
    "get_collector",
    "probe",
    "set_collector",
    "span",
    "use_collector",
]

RECORD_VERSION = 1
"""Schema version stamped on every JSONL record (``"v"`` key)."""

TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"
"""Environment override for where run files land."""


def default_telemetry_dir() -> Path:
    """``$REPRO_TELEMETRY_DIR``, else ``<cache dir>/telemetry``."""
    explicit = os.environ.get(TELEMETRY_DIR_ENV)
    if explicit:
        return Path(explicit)
    from ..experiments.engine import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

    cache = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
    return Path(cache) / "telemetry"


def _scalar(value: Any) -> Any:
    """Coerce a probe value to something JSON can hold losslessly."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, str)):
        return value
    try:
        f = float(value)
    except (TypeError, ValueError):
        return repr(value)
    if math.isnan(f):
        return "nan"
    if math.isinf(f):
        return "inf" if f > 0 else "-inf"
    return f


def decode_scalar(value: Any) -> Any:
    """Inverse of :func:`_scalar` for the float sentinels."""
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return value


class Span:
    """One timed pipeline stage with attached signal-quality probes.

    Use as a context manager (the normal path, via
    :meth:`TelemetryCollector.span`); the record is appended to the
    collector when the ``with`` block exits.
    """

    __slots__ = ("name", "seq", "parent_seq", "start_s", "wall_s",
                 "probes", "_collector", "_t0")

    def __init__(self, collector: "TelemetryCollector", name: str,
                 seq: int, parent_seq: int | None):
        self.name = name
        self.seq = seq
        self.parent_seq = parent_seq
        self.start_s = float("nan")
        self.wall_s = float("nan")
        self.probes: dict[str, Any] = {}
        self._collector = collector
        self._t0 = 0.0

    def probe(self, name: str, value: Any) -> None:
        """Attach one named measurement to this span."""
        self.probes[name] = _scalar(value)

    def __enter__(self) -> "Span":
        c = self._collector
        c._stack.append(self)
        self._t0 = time.perf_counter()
        self.start_s = self._t0 - c._epoch
        return self

    def __exit__(self, *exc: Any) -> None:
        self.wall_s = time.perf_counter() - self._t0
        c = self._collector
        if c._stack and c._stack[-1] is self:
            c._stack.pop()
        c._append({
            "v": RECORD_VERSION,
            "kind": "span",
            "seq": self.seq,
            "name": self.name,
            "parent_seq": self.parent_seq,
            "start_s": round(self.start_s, 6),
            "wall_s": round(self.wall_s, 6),
            "probes": self.probes,
        })


class _NullSpan:
    """Shared do-nothing span; the disabled path's entire cost."""

    __slots__ = ()

    def probe(self, name: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullCollector:
    """The default collector: accepts everything, records nothing."""

    enabled = False

    def span(self, name: str) -> _NullSpan:
        """A no-op span (one shared instance, no allocation)."""
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        """No-op counter increment."""

    def probe(self, name: str, value: Any) -> None:
        """No-op free-standing probe."""

    def save(self, path: str | os.PathLike | None = None) -> None:
        """Nothing to save."""
        return None

    def set_scenario(self, scenario: Any) -> None:
        """No-op scenario stamp."""

    def add_sink(self, sink: Callable[[dict], None]) -> Callable[[dict], None]:
        """No-op sink registration (nothing will ever be emitted)."""
        return sink

    def remove_sink(self, sink: Callable[[dict], None]) -> None:
        """No-op sink removal."""


class TelemetryCollector:
    """Buffers spans/counters for one run and writes them as JSONL.

    Parameters
    ----------
    run_id:
        Name of the run (the JSONL filename stem).  Defaults to a
        wall-clock timestamp plus the PID, unique enough for a local
        tree of runs.
    directory:
        Where :meth:`save` writes; defaults to
        ``$REPRO_TELEMETRY_DIR`` or ``<cache dir>/telemetry/``.
    label:
        Free-form description stored in the meta record.
    max_records:
        Keep only the most recent N span records in memory (the
        long-running streaming service would otherwise grow without
        bound).  ``None`` (the default) keeps everything.  Dropped spans
        are counted in :attr:`dropped_records`; sinks still see every
        record as it completes.

    Use directly, or as a context manager that installs itself as the
    current collector and saves on exit::

        with TelemetryCollector(run_id="link-1m") as tm:
            reader.decode(...)
        print(tm.path)        # .repro_cache/telemetry/link-1m.jsonl

    The collector is thread-compatible: record/counter appends and seq
    allocation are lock-protected, and the open-span stack is
    thread-local, so parentage stays correct when decodes run on worker
    threads (the streaming multiplexer's executor).  Registered *sinks*
    (:meth:`add_sink`) receive each completed span record as a dict --
    the live push feed of the streaming API; a raising sink is dropped
    rather than allowed to break the pipeline.
    """

    enabled = True

    def __init__(self, run_id: str | None = None, *,
                 directory: str | os.PathLike | None = None,
                 label: str = "",
                 max_records: int | None = None):
        if run_id is None:
            run_id = time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"
        self.run_id = str(run_id)
        self.directory = Path(directory) if directory is not None \
            else default_telemetry_dir()
        self.label = label
        self.max_records = max_records
        self.created_unix = time.time()
        self.scenario: dict[str, Any] | None = None
        self.scenario_hash: str | None = None
        self.path: Path | None = None
        self.dropped_records = 0
        self._records: list[dict[str, Any]] = []
        self._counters: dict[str, int] = {}
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sinks: list[Callable[[dict], None]] = []
        self._seq = 0
        self._epoch = time.perf_counter()
        self._restore: Any = None

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording ---------------------------------------------------------

    def span(self, name: str) -> Span:
        """Open a new span; nest by entering it as a context manager."""
        with self._lock:
            self._seq += 1
            seq = self._seq
        stack = self._stack
        parent = stack[-1].seq if stack else None
        return Span(self, name, seq, parent)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a run-wide counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def _append(self, record: dict[str, Any]) -> None:
        """Store one completed record and fan it out to the sinks."""
        with self._lock:
            self._records.append(record)
            if self.max_records is not None \
                    and len(self._records) > self.max_records:
                drop = len(self._records) - self.max_records
                del self._records[:drop]
                self.dropped_records += drop
            sinks = tuple(self._sinks)
        for sink in sinks:
            try:
                sink(record)
            except Exception:
                self.remove_sink(sink)

    # -- push sinks --------------------------------------------------------

    def add_sink(self, sink: Callable[[dict], None]) -> Callable[[dict], None]:
        """Register a callable to receive each completed span record.

        Returns ``sink`` (handy for later :meth:`remove_sink`).  Sinks
        run on whatever thread completes the span, so they must be cheap
        and thread-safe -- the streaming server's sinks just enqueue onto
        an asyncio loop via ``call_soon_threadsafe``.
        """
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Callable[[dict], None]) -> None:
        """Unregister a sink added with :meth:`add_sink` (idempotent)."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    def probe(self, name: str, value: Any) -> None:
        """Attach a probe to the innermost open span (or drop it)."""
        if self._stack:
            self._stack[-1].probe(name, value)

    def set_scenario(self, scenario: Any) -> None:
        """Stamp the run with the scenario it realises.

        The scenario's hash and full serialized dict land in the meta
        record, so a saved JSONL alone is enough to rebuild the exact
        operating point (``ScenarioConfig.from_dict``).  Accepts a
        :class:`repro.scenario.ScenarioConfig` or any object with
        compatible ``to_dict``/``scenario_hash`` methods (or a plain
        dict, stored as-is without a hash).
        """
        to_dict = getattr(scenario, "to_dict", None)
        self.scenario = to_dict() if callable(to_dict) else dict(scenario)
        hash_fn = getattr(scenario, "scenario_hash", None)
        self.scenario_hash = hash_fn() if callable(hash_fn) else None

    # -- introspection -----------------------------------------------------

    @property
    def spans(self) -> list[dict[str, Any]]:
        """Completed span records, in completion order."""
        with self._lock:
            return [r for r in self._records if r["kind"] == "span"]

    @property
    def counters(self) -> dict[str, int]:
        """Current counter values."""
        with self._lock:
            return dict(self._counters)

    # -- output ------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """Everything :meth:`save` would write, as dicts."""
        meta = {
            "v": RECORD_VERSION,
            "kind": "meta",
            "run_id": self.run_id,
            "label": self.label,
            "created_unix": self.created_unix,
        }
        if self.scenario is not None:
            meta["scenario_hash"] = self.scenario_hash
            meta["scenario"] = self.scenario
        with self._lock:
            records = list(self._records)
            counter_items = sorted(self._counters.items())
            if self.dropped_records:
                meta["dropped_records"] = self.dropped_records
        counters = [
            {"v": RECORD_VERSION, "kind": "counter", "name": k, "value": n}
            for k, n in counter_items
        ]
        return [meta, *records, *counters]

    def save(self, path: str | os.PathLike | None = None) -> Path:
        """Write the run as JSONL and return the file path."""
        out = Path(path) if path is not None \
            else self.directory / f"{self.run_id}.jsonl"
        out.parent.mkdir(parents=True, exist_ok=True)
        tmp = out.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as f:
            for record in self.records():
                f.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, out)
        self.path = out
        return out

    # -- context-manager installation --------------------------------------

    def __enter__(self) -> "TelemetryCollector":
        self._restore = set_collector(self)
        return self

    def __exit__(self, *exc: Any) -> None:
        set_collector(self._restore)
        self._restore = None
        self.save()


# -- current-collector plumbing ---------------------------------------------

_NULL = NullCollector()
_current: TelemetryCollector | NullCollector = _NULL


def get_collector() -> TelemetryCollector | NullCollector:
    """The collector instrumentation sites currently report to."""
    return _current


def set_collector(
    collector: TelemetryCollector | NullCollector | None,
) -> TelemetryCollector | NullCollector:
    """Install ``collector`` (``None`` = the null one); return the old."""
    global _current
    previous = _current
    _current = collector if collector is not None else _NULL
    return previous


@contextmanager
def use_collector(
    collector: TelemetryCollector | NullCollector,
) -> Iterator[TelemetryCollector | NullCollector]:
    """Install ``collector`` for the ``with`` body, then restore."""
    previous = set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)


def span(name: str):
    """Open a span on the current collector."""
    return _current.span(name)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the current collector."""
    _current.count(name, n)


def probe(name: str, value: Any) -> None:
    """Attach a probe to the current collector's innermost span."""
    _current.probe(name, value)
