"""Observability for the BackFi pipeline: spans, probes, counters.

The decode chain (cancellation -> sync -> channel estimation -> MRC ->
Viterbi) used to fail silently: experiments reported only end-of-pipe
BER/throughput, so a regression inside one stage was invisible until a
headline table moved.  This package gives every stage a *span* (wall
time) and typed *signal probes* (residual SI power, sync offset,
channel-estimate condition number, post-MRC SNR/EVM, Viterbi path
metric), exported as JSONL and summarised by ``repro trace``.

Usage::

    from repro.telemetry import TelemetryCollector

    with TelemetryCollector(run_id="my-run") as tm:
        reader.decode(timeline, rx, h_env)
    print(tm.path)           # .repro_cache/telemetry/my-run.jsonl

Then ``python -m repro.cli trace my-run`` renders the per-stage timing
table, the probe digest, and the stage-margin waterfall.

The default collector is a no-op singleton, so instrumented code pays
nothing when telemetry is off; see ``docs/TELEMETRY.md`` for the record
schema and the full hook map.
"""

from .collector import (
    RECORD_VERSION,
    NullCollector,
    Span,
    TelemetryCollector,
    count,
    default_telemetry_dir,
    get_collector,
    probe,
    set_collector,
    span,
    use_collector,
)
from .trace import TraceRun, load_run, resolve_run_path, summarize

__all__ = [
    "RECORD_VERSION",
    "NullCollector",
    "Span",
    "TelemetryCollector",
    "TraceRun",
    "count",
    "default_telemetry_dir",
    "get_collector",
    "load_run",
    "probe",
    "resolve_run_path",
    "set_collector",
    "span",
    "summarize",
    "use_collector",
]
