from setuptools import setup

# Build metadata lives in pyproject.toml; this shim exists because the
# offline environment lacks the `wheel` package required by PEP 517
# editable installs.
setup()
